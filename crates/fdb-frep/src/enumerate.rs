//! Enumeration of the relation represented by an f-representation.
//!
//! F-representations allow constant-delay enumeration of their tuples: after
//! `O(|E|)` preparation, successive tuples are produced with `O(|S|)` work
//! each (`S` the schema).  [`TupleCursor`] implements that enumeration as an
//! **iterative odometer** over the arena store — no recursion, no per-entry
//! allocation, no map lookups in the hot loop:
//!
//! * setup computes one *slot* per f-tree node (parents before descendants),
//!   each knowing its parent slot, its position in the parent's fixed child
//!   order, and the positions in the output buffer its value feeds
//!   (precomputed once, replacing the old per-singleton `BTreeMap` lookup);
//! * every slot holds a current union (an arena index) and a current entry;
//!   advancing to the next tuple bumps the deepest slot with another entry
//!   and refills the slots after it — the classic odometer, with child
//!   unions fetched by O(1) index thanks to the arena's fixed child order.
//!
//! [`for_each_tuple`] drives the cursor in callback form; [`materialize`]
//! collects the tuples into a flat [`Relation`] (mainly for tests, examples
//! and the RDB comparisons).
//!
//! # Parallel enumeration
//!
//! Because slot 0 is the **first root union** — the outermost wheel of the
//! odometer — restricting it to an entry sub-range yields a contiguous,
//! in-order chunk of the output: concatenating the chunks of a partition of
//! that range in partition order reproduces the sequential enumeration
//! bit for bit.  [`par_materialize`] exploits this: it splits the first
//! root's entries across a [`workpool::ThreadPool`], hands every worker a
//! clone of the one precomputed [`CursorConfig`] (the slot tables are the
//! only setup that walks the f-tree), and merges the chunks sequentially.

use crate::frep::FRep;
use crate::kernel;
use fdb_common::{failpoint, AttrId, ExecCtx, FdbError, Result, Value};
use fdb_ftree::{FTree, NodeId};
use fdb_relation::Relation;
use std::sync::{mpsc, Arc};
use workpool::ThreadPool;

/// Parent marker for slots whose union is a root union.
const NO_PARENT: u32 = u32::MAX;

/// One f-tree node's position in the enumeration order.
#[derive(Clone, Copy, Debug)]
struct Slot {
    /// Index of the parent slot (`NO_PARENT` for roots).
    parent: u32,
    /// For roots: index into the store's root list.  For inner slots: the
    /// node's position in the parent node's f-tree child order (the kid
    /// index inside the arena's child-slot table).
    kid_index: u32,
    /// Start of this node's buffer positions in `val_positions`.
    vals_start: u32,
    /// Number of buffer positions (visible attributes of the node's class).
    vals_len: u32,
}

/// The frozen per-representation enumeration layout: one [`Slot`] per
/// f-tree node (parents before descendants) plus the buffer positions each
/// slot's value feeds.  Computing it is the only part of cursor setup that
/// walks the f-tree, so parallel enumeration builds it **once** and hands
/// every worker a clone — the tables are plain `Copy` data, so a clone is a
/// memcpy and the hot loop stays indirection-free.
#[derive(Clone, Debug)]
pub struct CursorConfig {
    slots: Vec<Slot>,
    /// Flattened buffer positions; slot `s` writes its entry value to
    /// `buffer[val_positions[p]]` for `p` in `vals_start..vals_start+vals_len`.
    val_positions: Vec<u32>,
    /// Width of the tuple buffer (number of visible attributes).
    width: usize,
}

impl CursorConfig {
    /// Computes the slot layout of `rep` (the `O(nodes + |S|)` setup).
    pub fn new(rep: &FRep) -> Self {
        let attrs = rep.visible_attrs();
        let tree = rep.tree();

        // Buffer position of every visible attribute, in ascending order.
        let position_of = |attr| attrs.binary_search(&attr).expect("visible attribute") as u32;

        let mut slots = Vec::new();
        let mut val_positions = Vec::new();
        // Depth-first over each root's subtree, parents pushed before
        // children so refilling a suffix of slots always finds the parent's
        // current entry already set.
        for (root_index, root) in rep.roots().enumerate() {
            let mut stack: Vec<(fdb_ftree::NodeId, u32, u32)> =
                vec![(root.node(), NO_PARENT, root_index as u32)];
            while let Some((node, parent, kid_index)) = stack.pop() {
                let slot_index = slots.len() as u32;
                let vals_start = val_positions.len() as u32;
                for attr in tree.visible_attrs(node) {
                    val_positions.push(position_of(attr));
                }
                slots.push(Slot {
                    parent,
                    kid_index,
                    vals_start,
                    vals_len: val_positions.len() as u32 - vals_start,
                });
                // Push children in reverse so they pop in child order.
                let children = tree.children(node);
                for (k, &child) in children.iter().enumerate().rev() {
                    stack.push((child, slot_index, k as u32));
                }
            }
        }

        CursorConfig {
            slots,
            val_positions,
            width: attrs.len(),
        }
    }

    /// Computes a slot layout whose **outermost odometer wheels are the
    /// given root-path chain**: `chain[0]` (which must label a root) becomes
    /// slot 0, `chain[1]` (a child of `chain[0]`) slot 1, and so on; the
    /// remaining nodes follow in plain DFS order.  Slot order is exactly the
    /// odometer's significance order, so a cursor over this layout emits
    /// tuples sorted by the chain nodes' values first — ordered enumeration
    /// is free once the ordering attributes sit on the root path (the 2013
    /// follow-up paper's observation).  Any parents-before-children slot
    /// order is valid for the odometer, so correctness does not depend on
    /// the chain: only the emission order changes.
    ///
    /// An empty chain degenerates to [`CursorConfig::new`].
    pub fn with_priority(rep: &FRep, chain: &[NodeId]) -> Result<CursorConfig> {
        let Some(&chain_root) = chain.first() else {
            return Ok(CursorConfig::new(rep));
        };
        let attrs = rep.visible_attrs();
        let tree = rep.tree();
        let position_of = |attr| attrs.binary_search(&attr).expect("visible attribute") as u32;
        let Some(root_pos) = rep.roots().position(|r| r.node() == chain_root) else {
            return Err(FdbError::InvalidOperator {
                detail: format!("ordering chain starts at non-root node {chain_root}"),
            });
        };

        let mut slots: Vec<Slot> = Vec::new();
        let mut val_positions: Vec<u32> = Vec::new();
        // 1. The chain itself: slots 0..chain.len(), outermost first.
        for (i, &node) in chain.iter().enumerate() {
            let (parent, kid_index) = if i == 0 {
                (NO_PARENT, root_pos as u32)
            } else {
                let prev = chain[i - 1];
                let Some(k) = tree.children(prev).iter().position(|&c| c == node) else {
                    return Err(FdbError::InvalidOperator {
                        detail: format!(
                            "ordering chain is not a root path: node {node} is not a child \
                             of node {prev}"
                        ),
                    });
                };
                ((i - 1) as u32, k as u32)
            };
            let vals_start = val_positions.len() as u32;
            for attr in tree.visible_attrs(node) {
                val_positions.push(position_of(attr));
            }
            slots.push(Slot {
                parent,
                kid_index,
                vals_start,
                vals_len: val_positions.len() as u32 - vals_start,
            });
        }

        // 2. The remainder in plain DFS: the other roots and every hanging
        //    (non-chain) child of a chain node.  Their relative order only
        //    affects tie order among equal chain prefixes, which the ordered
        //    materialisers re-sort canonically anyway.
        let mut stack: Vec<(fdb_ftree::NodeId, u32, u32)> = Vec::new();
        for (root_index, root) in rep.roots().enumerate() {
            if root_index != root_pos {
                stack.push((root.node(), NO_PARENT, root_index as u32));
            }
        }
        for (i, &node) in chain.iter().enumerate() {
            let skip = chain.get(i + 1).copied();
            for (k, &child) in tree.children(node).iter().enumerate() {
                if Some(child) != skip {
                    stack.push((child, i as u32, k as u32));
                }
            }
        }
        while let Some((node, parent, kid_index)) = stack.pop() {
            let slot_index = slots.len() as u32;
            let vals_start = val_positions.len() as u32;
            for attr in tree.visible_attrs(node) {
                val_positions.push(position_of(attr));
            }
            slots.push(Slot {
                parent,
                kid_index,
                vals_start,
                vals_len: val_positions.len() as u32 - vals_start,
            });
            for (k, &child) in tree.children(node).iter().enumerate().rev() {
                stack.push((child, slot_index, k as u32));
            }
        }

        Ok(CursorConfig {
            slots,
            val_positions,
            width: attrs.len(),
        })
    }

    /// Number of entries of **slot 0's** root union (the partitionable range
    /// of [`TupleCursor::with_root_range`]); 0 for nullary representations.
    /// Slot 0 is the first root for a plain layout and the chain root for a
    /// priority layout.
    pub fn root_entries(&self, rep: &FRep) -> u32 {
        if self.slots.is_empty() {
            0
        } else {
            rep.store()
                .union_len(rep.store().roots[self.slots[0].kid_index as usize])
        }
    }
}

/// An iterative, allocation-free (after setup) cursor over the tuples of an
/// f-representation.  Tuples are produced in the lexicographic order induced
/// by the f-tree (each union is value-sorted); the buffer lists the values
/// of the representation's *visible* attributes in ascending attribute-id
/// order.
pub struct TupleCursor<'a> {
    rep: &'a FRep,
    slots: Vec<Slot>,
    /// See [`CursorConfig::val_positions`].
    val_positions: Vec<u32>,
    /// Current union (arena index) per slot.
    cur_union: Vec<u32>,
    /// Current entry index per slot.
    cur_entry: Vec<u32>,
    buffer: Vec<Value>,
    state: CursorState,
    /// Entry range `[root_lo, root_hi)` of the first root union this cursor
    /// enumerates (slot 0, the outermost odometer wheel); the full union for
    /// a plain cursor.
    root_lo: u32,
    root_hi: u32,
}

/// One step of the odometer loop (see [`TupleCursor::bump_and_fill`]).
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Bump the deepest slot strictly below the given end position.
    Bump(usize),
    /// Fill slots from the given position onwards with first entries.
    Fill(usize),
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum CursorState {
    /// `advance` has not been called yet.
    Fresh,
    /// The slot arrays hold a complete configuration (= one tuple).
    AtTuple,
    /// All tuples have been produced.
    Exhausted,
}

impl<'a> TupleCursor<'a> {
    /// Prepares a cursor (the `O(|E|)`-free, `O(nodes + |S|)` setup).
    pub fn new(rep: &'a FRep) -> Self {
        let config = CursorConfig::new(rep);
        let full = config.root_entries(rep);
        TupleCursor::with_root_range(rep, &config, 0, full)
    }

    /// Prepares a cursor from a precomputed slot layout, restricted to the
    /// entry range `[lo, hi)` of the **first root union** (slot 0).  The
    /// range is clamped to the union; `config` must have been computed for
    /// `rep` (or a representation with the identical store and f-tree).
    ///
    /// Restricting the outermost odometer wheel partitions the enumeration:
    /// the cursor produces exactly the tuples whose first-root entry falls
    /// in the range, in the sequential order.  The range is ignored by
    /// nullary representations (no slots, at most one empty tuple).
    pub fn with_root_range(rep: &'a FRep, config: &CursorConfig, lo: u32, hi: u32) -> Self {
        let full = config.root_entries(rep);
        let root_hi = hi.min(full);
        let root_lo = lo.min(root_hi);
        let slot_count = config.slots.len();
        TupleCursor {
            rep,
            slots: config.slots.clone(),
            val_positions: config.val_positions.clone(),
            cur_union: vec![0; slot_count],
            cur_entry: vec![0; slot_count],
            buffer: vec![Value::default(); config.width],
            state: CursorState::Fresh,
            root_lo,
            root_hi,
        }
    }

    /// The union (arena index) slot `s` currently ranges over.
    #[inline]
    fn union_of_slot(&self, s: usize) -> u32 {
        let slot = self.slots[s];
        let store = self.rep.store();
        if slot.parent == NO_PARENT {
            store.roots[slot.kid_index as usize]
        } else {
            let p = slot.parent as usize;
            store.kid(self.cur_union[p], self.cur_entry[p], slot.kid_index)
        }
    }

    /// Writes slot `s`'s current entry value into the buffer positions of
    /// its node's visible attributes.
    #[inline]
    fn write_values(&mut self, s: usize) {
        let slot = self.slots[s];
        let value = self.rep.store().value_slice(self.cur_union[s])[self.cur_entry[s] as usize];
        for p in slot.vals_start..slot.vals_start + slot.vals_len {
            self.buffer[self.val_positions[p as usize] as usize] = value;
        }
    }

    /// Advances to the next tuple; returns `false` when exhausted.
    pub fn advance(&mut self) -> bool {
        match self.state {
            CursorState::Exhausted => false,
            CursorState::Fresh => {
                self.state = CursorState::AtTuple;
                if self.rep.represents_empty() {
                    self.state = CursorState::Exhausted;
                    return false;
                }
                if self.slots.is_empty() {
                    // Nullary representation: exactly one empty tuple.
                    return true;
                }
                self.bump_and_fill(Step::Fill(0))
            }
            CursorState::AtTuple => {
                if self.slots.is_empty() {
                    self.state = CursorState::Exhausted;
                    return false;
                }
                self.bump_and_fill(Step::Bump(self.slots.len()))
            }
        }
    }

    /// The odometer: `Bump(end)` finds the deepest slot below `end` with
    /// another entry (slots below `end` are always validly configured);
    /// `Fill(s)` (re)initialises slots `s..` with their first entries,
    /// falling back to a bump when it meets an empty union.
    fn bump_and_fill(&mut self, start: Step) -> bool {
        let slot_count = self.slots.len();
        let mut step = start;
        loop {
            match step {
                Step::Bump(end) => {
                    let mut s = end;
                    loop {
                        if s == 0 {
                            self.state = CursorState::Exhausted;
                            return false;
                        }
                        s -= 1;
                        let entry_end = if s == 0 {
                            // Slot 0 stops at the cursor's root range.
                            self.root_hi
                        } else {
                            self.rep.store().union_len(self.cur_union[s])
                        };
                        if self.cur_entry[s] + 1 < entry_end {
                            self.cur_entry[s] += 1;
                            self.write_values(s);
                            step = Step::Fill(s + 1);
                            break;
                        }
                    }
                }
                Step::Fill(mut fill) => {
                    while fill < slot_count {
                        let union = self.union_of_slot(fill);
                        let (first, entry_end) = if fill == 0 {
                            // Slot 0 starts at the cursor's root range.
                            (self.root_lo, self.root_hi)
                        } else {
                            (0, self.rep.store().union_len(union))
                        };
                        if first >= entry_end {
                            // Nothing to choose here: only changing an
                            // earlier slot can help.
                            break;
                        }
                        self.cur_union[fill] = union;
                        self.cur_entry[fill] = first;
                        self.write_values(fill);
                        fill += 1;
                    }
                    if fill == slot_count {
                        return true;
                    }
                    step = Step::Bump(fill);
                }
            }
        }
    }

    /// The current tuple (valid after `advance` returned `true`).
    pub fn tuple(&self) -> &[Value] {
        &self.buffer
    }
}

/// Calls `f` once per tuple of the represented relation.  The buffer handed
/// to the callback lists the values of the representation's *visible*
/// attributes in ascending attribute-id order.
pub fn for_each_tuple<F: FnMut(&[Value])>(rep: &FRep, mut f: F) {
    let mut cursor = TupleCursor::new(rep);
    while cursor.advance() {
        f(cursor.tuple());
    }
}

/// Materialises the represented relation as a flat [`Relation`] over the
/// visible attributes (ascending id order).
pub fn materialize(rep: &FRep) -> Result<Relation> {
    let attrs = rep.visible_attrs();
    let mut out = Relation::new(attrs);
    let mut error = None;
    for_each_tuple(rep, |tuple| {
        if error.is_none() {
            if let Err(e) = out.push_row(tuple) {
                error = Some(e);
            }
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// [`materialize`] under a governance context: charges one unit per
/// enumerated tuple, so a deadline, budget or cancellation flag interrupts
/// the constant-delay scan between tuples.  Enumeration never mutates the
/// representation, so an abort just drops the partially built output.
pub fn materialize_ctx(rep: &FRep, ctx: &ExecCtx) -> Result<Relation> {
    failpoint!(ctx, "enumerate.cursor");
    let mut out = Relation::new(rep.visible_attrs());
    let mut cursor = TupleCursor::new(rep);
    while cursor.advance() {
        ctx.charge(1)?;
        out.push_row(cursor.tuple())?;
    }
    Ok(out)
}

/// How many partitions to cut the first root's entry range into per worker;
/// a few per worker smooths out skew between subtree sizes.
const PARTS_PER_WORKER: u32 = 4;

/// Splits `[0, n)` into at most `parts` non-empty contiguous ranges.
fn partition_bounds(n: u32, parts: u32) -> Vec<(u32, u32)> {
    let parts = parts.clamp(1, n.max(1));
    let chunk = n.div_ceil(parts);
    (0..parts)
        .map(|i| ((i * chunk).min(n), ((i + 1) * chunk).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Materialises the represented relation on a thread pool by partitioning
/// the first root union's entry range across workers (see the module docs).
/// Each worker enumerates its range with a clone of one shared
/// [`CursorConfig`] and the chunks are merged **sequentially in partition
/// order**, so the output — row order included — is bit-for-bit identical
/// to [`materialize`].
///
/// Representations whose first root has fewer than two entries (and nullary
/// ones) fall back to the sequential path, as does a single-worker pool.
pub fn par_materialize(rep: &Arc<FRep>, pool: &ThreadPool) -> Result<Relation> {
    let config = CursorConfig::new(rep);
    let bounds = partition_bounds(
        config.root_entries(rep),
        pool.threads() as u32 * PARTS_PER_WORKER,
    );
    if pool.threads() <= 1 || bounds.len() <= 1 || config.slots.is_empty() || config.width == 0 {
        return materialize(rep);
    }

    let config = Arc::new(config);
    let (tx, rx) = mpsc::channel::<(usize, Vec<Value>)>();
    for (part, &(lo, hi)) in bounds.iter().enumerate() {
        let rep = Arc::clone(rep);
        let config = Arc::clone(&config);
        let tx = tx.clone();
        pool.spawn(move || {
            let mut cursor = TupleCursor::with_root_range(&rep, &config, lo, hi);
            let mut rows = Vec::new();
            while cursor.advance() {
                rows.extend_from_slice(cursor.tuple());
            }
            // A closed receiver only means the caller bailed out early.
            let _ = tx.send((part, rows));
        });
    }
    drop(tx);

    let mut chunks: Vec<Option<Vec<Value>>> = vec![None; bounds.len()];
    for (part, rows) in rx {
        chunks[part] = Some(rows);
    }
    let mut out = Relation::new(rep.visible_attrs());
    for (part, chunk) in chunks.into_iter().enumerate() {
        let rows = chunk.ok_or_else(|| FdbError::InvalidInput {
            detail: format!("parallel enumeration lost partition {part} (worker panicked)"),
        })?;
        for row in rows.chunks_exact(config.width) {
            out.push_row(row)?;
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Ordered enumeration (ORDER BY)
// ---------------------------------------------------------------------
//
// The ordered-output contract, shared by every path below and by the
// engine's oracles: rows sorted ascending by the ordering attributes in
// request order, ties broken by the full row (all visible attributes in
// ascending id order).  The tie-break makes the order total, so ordered
// results are bit-for-bit deterministic regardless of which strategy
// produced them.

/// How an ordered materialisation obtained its order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderStrategy {
    /// The ordering attributes' nodes form a root-path chain of the f-tree:
    /// a [`CursorConfig::with_priority`] cursor emitted the rows already
    /// grouped and sorted by the ordering prefix, and only runs of equal
    /// prefix were sorted locally for the canonical tie-break.
    Chain,
    /// No chain: enumerate in plain f-tree order, then sort the flat
    /// output.
    FlatSort,
}

/// Resolves an `ORDER BY` attribute list against the f-tree: returns the
/// ordering nodes as a root-path chain (outermost first, class attributes
/// deduplicated) when the attributes' nodes form one — the precondition of
/// free ordered enumeration — and `None` otherwise (unknown or invisible
/// attribute, chain not starting at a root, or a gap in the path).  The
/// caller decides whether to restructure the tree or fall back to a flat
/// sort.
pub fn order_chain(tree: &FTree, order_by: &[AttrId]) -> Option<Vec<NodeId>> {
    if order_by.is_empty() {
        return None;
    }
    let mut chain: Vec<NodeId> = Vec::new();
    for &attr in order_by {
        let node = tree.node_of_attr(attr)?;
        if !tree.visible_attrs(node).contains(&attr) {
            return None;
        }
        match chain.last() {
            None => {
                if tree.parent(node).is_some() {
                    return None;
                }
                chain.push(node);
            }
            Some(&prev) if prev == node => {}
            Some(&prev) => {
                if tree.parent(node) != Some(prev) {
                    return None;
                }
                chain.push(node);
            }
        }
    }
    Some(chain)
}

/// Buffer column of every ordering attribute (ascending-id buffer layout).
fn order_cols(attrs: &[AttrId], order_by: &[AttrId]) -> Result<Vec<usize>> {
    order_by
        .iter()
        .map(|&a| {
            attrs
                .binary_search(&a)
                .map_err(|_| FdbError::AttributeNotInQuery {
                    attr: format!("{a}"),
                })
        })
        .collect()
}

/// The canonical ordered-output comparator (see the section comment).
fn canonical_cmp(a: &[Value], b: &[Value], order_cols: &[usize]) -> std::cmp::Ordering {
    for &c in order_cols {
        match a[c].cmp(&b[c]) {
            std::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    a.cmp(b)
}

/// Sorts each maximal run of rows with equal ordering-column values by the
/// full row — the canonical tie-break on top of an already prefix-sorted
/// stream.  Runs are tiny compared to the output whenever the ordering
/// prefix discriminates, which is what makes the chain strategy cheaper
/// than a full sort.
fn sort_runs(rows: &mut [Vec<Value>], order_cols: &[usize]) {
    let Some((&c0, rest)) = order_cols.split_first() else {
        rows.sort_unstable();
        return;
    };
    // The stream arrives sorted on the ordering prefix, so the primary
    // column is non-decreasing and every equal value forms one contiguous
    // run — exactly [`kernel::run_end`]'s precondition.  Copy that column
    // into one dense buffer and let the vectorised boundary scan find the
    // coarse runs; the remaining ordering columns sub-split them.
    let col0: Vec<Value> = rows.iter().map(|r| r[c0]).collect();
    let mut start = 0;
    while start < rows.len() {
        let coarse_end = kernel::run_end(&col0, start);
        let mut s = start;
        for i in s + 1..=coarse_end {
            if i == coarse_end || rest.iter().any(|&c| rows[i][c] != rows[s][c]) {
                rows[s..i].sort_unstable();
                s = i;
            }
        }
        start = coarse_end;
    }
}

fn rows_into_relation(attrs: Vec<AttrId>, rows: &[Vec<Value>]) -> Result<Relation> {
    let mut out = Relation::new(attrs);
    for row in rows {
        out.push_row(row)?;
    }
    Ok(out)
}

/// Materialises the represented relation **in the canonical ordered-output
/// order** for the given `ORDER BY` attributes.  Picks the chain strategy
/// (free ordered enumeration via [`CursorConfig::with_priority`] plus
/// run-local tie sorting) when [`order_chain`] finds a root-path chain, and
/// the materialise-then-sort fallback otherwise; both produce bit-for-bit
/// identical rows, so the returned [`OrderStrategy`] is observability, not
/// semantics.
pub fn materialize_ordered(rep: &FRep, order_by: &[AttrId]) -> Result<(Relation, OrderStrategy)> {
    materialize_ordered_ctx(rep, order_by, &ExecCtx::unlimited())
}

/// [`materialize_ordered`] under a governance context: charges one unit per
/// enumerated tuple, like [`materialize_ctx`].
pub fn materialize_ordered_ctx(
    rep: &FRep,
    order_by: &[AttrId],
    ctx: &ExecCtx,
) -> Result<(Relation, OrderStrategy)> {
    failpoint!(ctx, "enumerate.cursor");
    let attrs = rep.visible_attrs();
    let cols = order_cols(&attrs, order_by)?;
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let strategy = match order_chain(rep.tree(), order_by) {
        Some(chain) => {
            let config = CursorConfig::with_priority(rep, &chain)?;
            let full = config.root_entries(rep);
            let mut cursor = TupleCursor::with_root_range(rep, &config, 0, full);
            while cursor.advance() {
                ctx.charge(1)?;
                rows.push(cursor.tuple().to_vec());
            }
            sort_runs(&mut rows, &cols);
            OrderStrategy::Chain
        }
        None => {
            let mut cursor = TupleCursor::new(rep);
            while cursor.advance() {
                ctx.charge(1)?;
                rows.push(cursor.tuple().to_vec());
            }
            rows.sort_unstable_by(|a, b| canonical_cmp(a, b, &cols));
            OrderStrategy::FlatSort
        }
    };
    Ok((rows_into_relation(attrs, &rows)?, strategy))
}

/// The materialise-then-sort reference: enumerates in plain f-tree order
/// and sorts the flat output with the canonical comparator.  The ordered
/// paths are pinned bit-for-bit against this oracle, and the benchmarks
/// time it as the flat-engine baseline.
pub fn materialize_then_sort(rep: &FRep, order_by: &[AttrId]) -> Result<Relation> {
    let attrs = rep.visible_attrs();
    let cols = order_cols(&attrs, order_by)?;
    let rel = materialize(rep)?;
    let mut rows: Vec<Vec<Value>> = rel.rows().map(|r| r.to_vec()).collect();
    rows.sort_unstable_by(|a, b| canonical_cmp(a, b, &cols));
    rows_into_relation(attrs, &rows)
}

/// [`materialize_ordered`] on a thread pool.  The chain strategy partitions
/// slot 0 — the chain root — exactly like [`par_materialize`]; because the
/// entries of one union carry **distinct** values, a run of equal ordering
/// prefix never spans a slot-0 entry (hence never a partition), so
/// per-worker run sorting plus an in-order merge reproduces the sequential
/// canonical order bit for bit.  The fallback runs [`par_materialize`] and
/// sorts the merged output.
pub fn par_materialize_ordered(
    rep: &Arc<FRep>,
    order_by: &[AttrId],
    pool: &ThreadPool,
) -> Result<(Relation, OrderStrategy)> {
    let attrs = rep.visible_attrs();
    let cols = order_cols(&attrs, order_by)?;
    let Some(chain) = order_chain(rep.tree(), order_by) else {
        let rel = par_materialize(rep, pool)?;
        let mut rows: Vec<Vec<Value>> = rel.rows().map(|r| r.to_vec()).collect();
        rows.sort_unstable_by(|a, b| canonical_cmp(a, b, &cols));
        return Ok((rows_into_relation(attrs, &rows)?, OrderStrategy::FlatSort));
    };
    let config = CursorConfig::with_priority(rep, &chain)?;
    let bounds = partition_bounds(
        config.root_entries(rep),
        pool.threads() as u32 * PARTS_PER_WORKER,
    );
    if pool.threads() <= 1 || bounds.len() <= 1 || config.slots.is_empty() || config.width == 0 {
        return materialize_ordered(rep, order_by);
    }

    let config = Arc::new(config);
    let cols = Arc::new(cols);
    let (tx, rx) = mpsc::channel::<(usize, Vec<Vec<Value>>)>();
    for (part, &(lo, hi)) in bounds.iter().enumerate() {
        let rep = Arc::clone(rep);
        let config = Arc::clone(&config);
        let cols = Arc::clone(&cols);
        let tx = tx.clone();
        pool.spawn(move || {
            let mut cursor = TupleCursor::with_root_range(&rep, &config, lo, hi);
            let mut rows = Vec::new();
            while cursor.advance() {
                rows.push(cursor.tuple().to_vec());
            }
            sort_runs(&mut rows, &cols);
            // A closed receiver only means the caller bailed out early.
            let _ = tx.send((part, rows));
        });
    }
    drop(tx);

    let mut chunks: Vec<Option<Vec<Vec<Value>>>> = vec![None; bounds.len()];
    for (part, rows) in rx {
        chunks[part] = Some(rows);
    }
    let mut out = Relation::new(attrs);
    for (part, chunk) in chunks.into_iter().enumerate() {
        let rows = chunk.ok_or_else(|| FdbError::InvalidInput {
            detail: format!("parallel enumeration lost partition {part} (worker panicked)"),
        })?;
        for row in &rows {
            out.push_row(row)?;
        }
    }
    Ok((out, OrderStrategy::Chain))
}

/// Counts tuples by enumeration (used by tests to cross-check
/// [`FRep::tuple_count`]).
pub fn count_by_enumeration(rep: &FRep) -> u128 {
    let mut n: u128 = 0;
    for_each_tuple(rep, |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frep::FRep;
    use crate::node::{Entry, Union};
    use fdb_common::AttrId;
    use fdb_ftree::{DepEdge, FTree};
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// ⟨A:1⟩×(⟨B:1⟩ ∪ ⟨B:2⟩) ∪ ⟨A:2⟩×⟨B:2⟩ over the f-tree A → B.
    fn example3() -> FRep {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 3)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        b,
                        vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(2))],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![Entry::leaf(Value::new(2))])],
                },
            ],
        );
        FRep::from_parts(tree, vec![union]).unwrap()
    }

    /// A two-root forest: (⟨A:1⟩ ∪ ⟨A:2⟩) × (⟨B:5⟩ ∪ ⟨B:6⟩ ∪ ⟨B:7⟩).
    fn product_forest() -> FRep {
        let edges = vec![
            DepEdge::new("R", attrs(&[0]), 2),
            DepEdge::new("S", attrs(&[1]), 3),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), None).unwrap();
        let ua = Union::new(
            a,
            vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(2))],
        );
        let ub = Union::new(
            b,
            vec![
                Entry::leaf(Value::new(5)),
                Entry::leaf(Value::new(6)),
                Entry::leaf(Value::new(7)),
            ],
        );
        FRep::from_parts(tree, vec![ua, ub]).unwrap()
    }

    #[test]
    fn example3_enumerates_its_three_tuples() {
        let rep = example3();
        let rel = materialize(&rep).unwrap();
        let expected: BTreeSet<Vec<Value>> = [
            vec![Value::new(1), Value::new(1)],
            vec![Value::new(1), Value::new(2)],
            vec![Value::new(2), Value::new(2)],
        ]
        .into_iter()
        .collect();
        assert_eq!(rel.tuple_set(), expected);
        assert_eq!(count_by_enumeration(&rep), rep.tuple_count());
    }

    #[test]
    fn tuples_come_out_in_lexicographic_order() {
        let rep = example3();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for_each_tuple(&rep, |t| rows.push(t.to_vec()));
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(rows, sorted);
    }

    #[test]
    fn product_of_roots_enumerates_the_cross_product() {
        let rep = product_forest();
        let rel = materialize(&rep).unwrap();
        assert_eq!(rel.len(), 6);
        assert_eq!(rel.arity(), 2);
        assert_eq!(count_by_enumeration(&rep), 6);
    }

    #[test]
    fn empty_representation_enumerates_nothing() {
        let edges = vec![DepEdge::new("R", attrs(&[0]), 0)];
        let mut tree = FTree::new(edges);
        tree.add_node(attrs(&[0]), None).unwrap();
        let rep = FRep::empty(tree);
        assert_eq!(count_by_enumeration(&rep), 0);
        assert!(materialize(&rep).unwrap().is_empty());
    }

    #[test]
    fn nullary_representation_enumerates_one_empty_tuple() {
        let rep = FRep::empty(FTree::new(vec![]));
        let mut tuples = 0;
        for_each_tuple(&rep, |t| {
            assert!(t.is_empty());
            tuples += 1;
        });
        assert_eq!(tuples, 1);
    }

    #[test]
    fn class_attributes_share_the_entry_value() {
        // A node labelled by two attributes emits the same value for both.
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 1)];
        let mut tree = FTree::new(edges);
        let ab = tree.add_node(attrs(&[0, 1]), None).unwrap();
        let u = Union::new(ab, vec![Entry::leaf(Value::new(9))]);
        let rep = FRep::from_parts(tree, vec![u]).unwrap();
        let rel = materialize(&rep).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.row(0), &[Value::new(9), Value::new(9)]);
    }

    #[test]
    fn empty_inner_union_skips_only_its_branch() {
        // A{0} → B{1}; A=1 has an empty B-union (unpruned), A=2 has B{7}.
        // Only A=2's tuple must be produced.
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 2)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::empty(b)],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![Entry::leaf(Value::new(7))])],
                },
            ],
        );
        let rep = FRep::from_parts(tree, vec![union]).unwrap();
        let rel = materialize(&rep).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.row(0), &[Value::new(2), Value::new(7)]);
    }

    /// Collects all tuples of `rep` into one flat vector.
    fn all_rows(rep: &FRep) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for_each_tuple(rep, |t| rows.push(t.to_vec()));
        rows
    }

    #[test]
    fn every_root_range_split_reproduces_the_sequential_order() {
        for rep in [example3(), product_forest()] {
            let expected = all_rows(&rep);
            let config = CursorConfig::new(&rep);
            let n = config.root_entries(&rep);
            for split in 0..=n {
                let mut rows = Vec::new();
                for (lo, hi) in [(0, split), (split, n)] {
                    let mut cursor = TupleCursor::with_root_range(&rep, &config, lo, hi);
                    while cursor.advance() {
                        rows.push(cursor.tuple().to_vec());
                    }
                }
                assert_eq!(rows, expected, "split at {split}/{n}");
            }
        }
    }

    #[test]
    fn partition_bounds_cover_the_range_without_overlap() {
        for n in 0..40u32 {
            for parts in 1..10u32 {
                let bounds = partition_bounds(n, parts);
                let mut next = 0;
                for (lo, hi) in bounds {
                    assert_eq!(lo, next, "contiguous from {next}");
                    assert!(lo < hi, "non-empty");
                    next = hi;
                }
                assert_eq!(next, n, "covers [0, {n})");
            }
        }
    }

    #[test]
    fn par_materialize_is_bit_for_bit_identical_to_materialize() {
        let pool = workpool::ThreadPool::new(4);
        for rep in [example3(), product_forest()] {
            let rep = std::sync::Arc::new(rep);
            let seq = materialize(&rep).unwrap();
            let par = par_materialize(&rep, &pool).unwrap();
            assert_eq!(par.attrs(), seq.attrs());
            let seq_rows: Vec<_> = seq.rows().collect();
            let par_rows: Vec<_> = par.rows().collect();
            assert_eq!(par_rows, seq_rows, "row order is preserved");
        }
    }

    #[test]
    fn par_materialize_handles_empty_and_nullary_representations() {
        let pool = workpool::ThreadPool::new(4);
        let edges = vec![DepEdge::new("R", attrs(&[0]), 0)];
        let mut tree = FTree::new(edges);
        tree.add_node(attrs(&[0]), None).unwrap();
        let empty = std::sync::Arc::new(FRep::empty(tree));
        assert!(par_materialize(&empty, &pool).unwrap().is_empty());

        // A nullary representation (one empty tuple) takes the sequential
        // fallback; the result matches `materialize` exactly (a zero-arity
        // `Relation` stores no data, so both report emptiness).
        let nullary = std::sync::Arc::new(FRep::empty(FTree::new(vec![])));
        let seq = materialize(&nullary).unwrap();
        let par = par_materialize(&nullary, &pool).unwrap();
        assert_eq!(par.len(), seq.len());
        assert_eq!(par.arity(), seq.arity());
    }

    /// A → B tree with a *repeating* child value so ordering by B has
    /// multi-tuple runs: tuples {(1,4), (1,9), (2,4), (3,4), (3,9)}.
    fn runs_shape() -> FRep {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 5)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let kid = |vals: &[u64]| {
            Union::new(
                b,
                vals.iter().map(|&v| Entry::leaf(Value::new(v))).collect(),
            )
        };
        let union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![kid(&[4, 9])],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![kid(&[4])],
                },
                Entry {
                    value: Value::new(3),
                    children: vec![kid(&[4, 9])],
                },
            ],
        );
        FRep::from_parts(tree, vec![union]).unwrap()
    }

    #[test]
    fn order_chain_accepts_root_paths_only() {
        let rep = runs_shape();
        let tree = rep.tree();
        let a = tree.node_of_attr(AttrId(0)).unwrap();
        let b = tree.node_of_attr(AttrId(1)).unwrap();
        assert_eq!(order_chain(tree, &[AttrId(0)]), Some(vec![a]));
        assert_eq!(order_chain(tree, &[AttrId(0), AttrId(1)]), Some(vec![a, b]));
        // Not starting at the root, gaps, unknown attributes: no chain.
        assert_eq!(order_chain(tree, &[AttrId(1)]), None);
        assert_eq!(order_chain(tree, &[AttrId(1), AttrId(0)]), None);
        assert_eq!(order_chain(tree, &[AttrId(9)]), None);
        assert_eq!(order_chain(tree, &[]), None);
    }

    #[test]
    fn ordered_materialize_matches_the_sort_oracle_on_both_strategies() {
        for rep in [example3(), product_forest(), runs_shape()] {
            let attrs = rep.visible_attrs();
            // Every single- and two-attribute ordering, chain or not.
            let mut orders: Vec<Vec<AttrId>> = attrs.iter().map(|&a| vec![a]).collect();
            for &a in &attrs {
                for &b in &attrs {
                    if a != b {
                        orders.push(vec![a, b]);
                    }
                }
            }
            for order in &orders {
                let oracle = materialize_then_sort(&rep, order).unwrap();
                let (got, strategy) = materialize_ordered(&rep, order).unwrap();
                let oracle_rows: Vec<_> = oracle.rows().collect();
                let got_rows: Vec<_> = got.rows().collect();
                assert_eq!(
                    got_rows, oracle_rows,
                    "order {order:?} via {strategy:?} diverges from the sort oracle"
                );
            }
        }
    }

    #[test]
    fn chain_strategy_is_used_when_the_chain_exists() {
        let rep = runs_shape();
        let (_, s) = materialize_ordered(&rep, &[AttrId(0)]).unwrap();
        assert_eq!(s, OrderStrategy::Chain);
        let (_, s) = materialize_ordered(&rep, &[AttrId(0), AttrId(1)]).unwrap();
        assert_eq!(s, OrderStrategy::Chain);
        // B alone is not a root path: flat sort.
        let (_, s) = materialize_ordered(&rep, &[AttrId(1)]).unwrap();
        assert_eq!(s, OrderStrategy::FlatSort);
    }

    #[test]
    fn priority_cursor_orders_by_a_non_first_root() {
        // Ordering by the *second* root's attribute: slot 0 must become
        // that root (root_entries and the odometer follow kid_index).
        let rep = product_forest();
        let (rel, s) = materialize_ordered(&rep, &[AttrId(1)]).unwrap();
        assert_eq!(s, OrderStrategy::Chain);
        let oracle = materialize_then_sort(&rep, &[AttrId(1)]).unwrap();
        let got: Vec<_> = rel.rows().collect();
        let want: Vec<_> = oracle.rows().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_materialize_ordered_matches_sequential_at_every_pool_size() {
        for threads in [1, 2, 4, 8] {
            let pool = workpool::ThreadPool::new(threads);
            for rep in [example3(), product_forest(), runs_shape()] {
                let rep = std::sync::Arc::new(rep);
                for order in [vec![AttrId(0)], vec![AttrId(1)], vec![AttrId(0), AttrId(1)]] {
                    let (seq, seq_s) = materialize_ordered(&rep, &order).unwrap();
                    let (par, par_s) = par_materialize_ordered(&rep, &order, &pool).unwrap();
                    assert_eq!(par_s, seq_s, "{threads} threads, order {order:?}");
                    let seq_rows: Vec<_> = seq.rows().collect();
                    let par_rows: Vec<_> = par.rows().collect();
                    assert_eq!(
                        par_rows, seq_rows,
                        "{threads} threads, order {order:?}: parallel order diverges"
                    );
                }
            }
        }
    }

    #[test]
    fn cursor_can_be_driven_manually() {
        let rep = product_forest();
        let mut cursor = TupleCursor::new(&rep);
        let mut count = 0;
        while cursor.advance() {
            assert_eq!(cursor.tuple().len(), 2);
            count += 1;
        }
        assert_eq!(count, 6);
        // Once exhausted, the cursor stays exhausted.
        assert!(!cursor.advance());
    }
}
