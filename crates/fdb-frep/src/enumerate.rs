//! Enumeration of the relation represented by an f-representation.
//!
//! F-representations allow constant-delay enumeration of their tuples: after
//! `O(|E|)` preparation, successive tuples are produced with `O(|S|)` work
//! each (`S` the schema).  [`for_each_tuple`] walks the representation
//! depth-first, filling a single reusable buffer — this is the constant-delay
//! enumeration in callback form.  [`materialize`] collects the tuples into a
//! flat [`Relation`] (mainly for tests, examples and the RDB comparisons).

use crate::frep::{FRep, Union};
use fdb_common::{AttrId, Result, Value};
use fdb_relation::Relation;
use std::collections::BTreeMap;

/// Calls `f` once per tuple of the represented relation.  The buffer handed
/// to the callback lists the values of the representation's *visible*
/// attributes in ascending attribute-id order.
pub fn for_each_tuple<F: FnMut(&[Value])>(rep: &FRep, mut f: F) {
    let attrs = rep.visible_attrs();
    let positions: BTreeMap<AttrId, usize> =
        attrs.iter().enumerate().map(|(i, &a)| (a, i)).collect();
    let mut buffer = vec![Value::default(); attrs.len()];
    if rep.represents_empty() {
        return;
    }
    let roots: Vec<&Union> = rep.roots().iter().collect();
    product_rec(rep, &roots, &positions, &mut buffer, &mut f);
}

fn product_rec<F: FnMut(&[Value])>(
    rep: &FRep,
    unions: &[&Union],
    positions: &BTreeMap<AttrId, usize>,
    buffer: &mut Vec<Value>,
    f: &mut F,
) {
    let Some((first, rest)) = unions.split_first() else {
        f(buffer);
        return;
    };
    let visible = rep.tree().visible_attrs(first.node);
    for entry in &first.entries {
        for attr in &visible {
            buffer[positions[attr]] = entry.value;
        }
        if entry.children.is_empty() {
            product_rec(rep, rest, positions, buffer, f);
        } else {
            let mut combined: Vec<&Union> = Vec::with_capacity(entry.children.len() + rest.len());
            combined.extend(entry.children.iter());
            combined.extend(rest.iter().copied());
            product_rec(rep, &combined, positions, buffer, f);
        }
    }
}

/// Materialises the represented relation as a flat [`Relation`] over the
/// visible attributes (ascending id order).
pub fn materialize(rep: &FRep) -> Result<Relation> {
    let attrs = rep.visible_attrs();
    let mut out = Relation::new(attrs);
    let mut error = None;
    for_each_tuple(rep, |tuple| {
        if error.is_none() {
            if let Err(e) = out.push_row(tuple) {
                error = Some(e);
            }
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Counts tuples by enumeration (used by tests to cross-check
/// [`FRep::tuple_count`]).
pub fn count_by_enumeration(rep: &FRep) -> u128 {
    let mut n: u128 = 0;
    for_each_tuple(rep, |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frep::{Entry, FRep, Union};
    use fdb_ftree::{DepEdge, FTree};
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// ⟨A:1⟩×(⟨B:1⟩ ∪ ⟨B:2⟩) ∪ ⟨A:2⟩×⟨B:2⟩ over the f-tree A → B.
    fn example3() -> FRep {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 3)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        b,
                        vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(2))],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![Entry::leaf(Value::new(2))])],
                },
            ],
        );
        FRep::from_parts(tree, vec![union]).unwrap()
    }

    /// A two-root forest: (⟨A:1⟩ ∪ ⟨A:2⟩) × (⟨B:5⟩ ∪ ⟨B:6⟩ ∪ ⟨B:7⟩).
    fn product_forest() -> FRep {
        let edges = vec![
            DepEdge::new("R", attrs(&[0]), 2),
            DepEdge::new("S", attrs(&[1]), 3),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), None).unwrap();
        let ua = Union::new(a, vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(2))]);
        let ub = Union::new(
            b,
            vec![Entry::leaf(Value::new(5)), Entry::leaf(Value::new(6)), Entry::leaf(Value::new(7))],
        );
        FRep::from_parts(tree, vec![ua, ub]).unwrap()
    }

    #[test]
    fn example3_enumerates_its_three_tuples() {
        let rep = example3();
        let rel = materialize(&rep).unwrap();
        let expected: BTreeSet<Vec<Value>> = [
            vec![Value::new(1), Value::new(1)],
            vec![Value::new(1), Value::new(2)],
            vec![Value::new(2), Value::new(2)],
        ]
        .into_iter()
        .collect();
        assert_eq!(rel.tuple_set(), expected);
        assert_eq!(count_by_enumeration(&rep), rep.tuple_count());
    }

    #[test]
    fn product_of_roots_enumerates_the_cross_product() {
        let rep = product_forest();
        let rel = materialize(&rep).unwrap();
        assert_eq!(rel.len(), 6);
        assert_eq!(rel.arity(), 2);
        assert_eq!(count_by_enumeration(&rep), 6);
    }

    #[test]
    fn empty_representation_enumerates_nothing() {
        let edges = vec![DepEdge::new("R", attrs(&[0]), 0)];
        let mut tree = FTree::new(edges);
        tree.add_node(attrs(&[0]), None).unwrap();
        let rep = FRep::empty(tree);
        assert_eq!(count_by_enumeration(&rep), 0);
        assert!(materialize(&rep).unwrap().is_empty());
    }

    #[test]
    fn nullary_representation_enumerates_one_empty_tuple() {
        let rep = FRep::empty(FTree::new(vec![]));
        let mut tuples = 0;
        for_each_tuple(&rep, |t| {
            assert!(t.is_empty());
            tuples += 1;
        });
        assert_eq!(tuples, 1);
    }

    #[test]
    fn class_attributes_share_the_entry_value() {
        // A node labelled by two attributes emits the same value for both.
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 1)];
        let mut tree = FTree::new(edges);
        let ab = tree.add_node(attrs(&[0, 1]), None).unwrap();
        let u = Union::new(ab, vec![Entry::leaf(Value::new(9))]);
        let rep = FRep::from_parts(tree, vec![u]).unwrap();
        let rel = materialize(&rep).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.row(0), &[Value::new(9), Value::new(9)]);
    }
}
