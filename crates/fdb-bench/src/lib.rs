//! Experiment drivers regenerating the paper's evaluation (Section 5).
//!
//! Each `expN` module reproduces one experiment of the paper and returns its
//! measurements as plain rows, so the same code backs the `experiments`
//! binary (which prints the tables used in `EXPERIMENTS.md`), the Criterion
//! benchmarks, and any ad-hoc analysis.
//!
//! | module | paper figure | what is measured |
//! |---|---|---|
//! | [`exp1`] | Figure 5 | optimisation time and cost `s(T)` of optimal f-trees for random queries on flat data |
//! | [`exp2`] | Figures 6 and 9 | f-plan and result costs, and optimisation times, of the full-search vs. greedy optimisers on factorised data |
//! | [`exp3`] | Figure 7 | result sizes and evaluation times of FDB vs. the RDB baseline on flat data (uniform, Zipf, combinatorial) |
//! | [`exp4`] | Figure 8 | result sizes and evaluation times of FDB vs. RDB for queries on factorised data |
//!
//! The comparator engines SQLite and PostgreSQL of the paper are not
//! re-implemented; the paper reports them tracking RDB within small constant
//! factors (≈3× and ≈3× further), so the harness derives clearly-labelled
//! simulated series from the RDB measurements where a side-by-side view is
//! useful.

#![warn(missing_docs)]

pub mod exp1;
pub mod exp2;
pub mod exp3;
pub mod exp4;
pub mod pr1;
pub mod pr10;
pub mod pr2;
pub mod pr3;
pub mod pr4;
pub mod pr5;
pub mod pr6;
pub mod pr7;
pub mod pr8;
pub mod pr9;
pub mod report;

/// Scale of an experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A quick run: fewer repetitions, smaller sweeps — finishes in a couple
    /// of minutes and still shows every trend.
    Quick,
    /// The full run used to fill in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Number of repetitions per configuration (the paper averages over 5).
    pub fn repetitions(self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Full => 5,
        }
    }
}

/// The constant factor by which the paper reports SQLite trailing RDB.
pub const SQLITE_FACTOR: f64 = 3.0;
/// The constant factor by which the paper reports PostgreSQL trailing SQLite.
pub const POSTGRES_FACTOR: f64 = 3.0;
