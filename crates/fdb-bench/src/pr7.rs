//! PR 7 benchmark: governance overhead of the `ExecCtx` plumbing.
//!
//! PR 7 threads a cooperative governance context (deadline + budget +
//! cancellation, see `fdb_common::limits`) through every data-dependent
//! loop of the stack: the semi-join construction, the fused overlay
//! executor, the aggregate fold, the enumeration cursor and the serving
//! path.  The contract is that *armed but never-tripping* limits cost
//! almost nothing — budget accounting is a `Cell` subtract and the clock
//! and cancellation flag are consulted once per
//! [`fdb_common::limits::CHECK_INTERVAL`] work units.
//!
//! Each row times the same workload twice:
//!
//! * **baseline** — the ungoverned public API (internally an
//!   `ExecCtx::unlimited()`, a single-branch short-circuit);
//! * **governed** — the `_ctx` variant under a deadline of an hour and a
//!   budget of 2^60 units, so every check runs but none ever trips.
//!
//! The committed acceptance bound is a geometric-mean overhead of at most
//! 3% (`overhead_geomean <= 1.03` in `BENCH_PR7.json`).  The `experiments
//! bench-pr7` subcommand prints the table and serialises the rows;
//! `--scale smoke` shrinks the inputs so CI can run it as a canary.

use crate::report::BenchJson;
use fdb_common::{ComparisonOp, ExecCtx, QueryLimits, Value};
use fdb_core::{FactorisedQuery, FdbEngine, FdbServer, PlanCache, ServeRequest, SharedDatabase};
use fdb_datagen::{populate, random_query, random_schema, ValueDistribution};
use fdb_frep::FRep;
use fdb_frep::{
    aggregate, build_frep, build_frep_ctx, materialize, materialize_ctx, AggregateKind,
};
use fdb_relation::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One baseline-vs-governed measurement.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Governed code path (stable across refactors).
    pub name: String,
    /// Singleton count of the representation the workload runs over.
    pub singletons: u64,
    /// Timed repetitions per measurement.
    pub reps: u32,
    /// Best wall time of one ungoverned execution.
    pub baseline_seconds: f64,
    /// Best wall time of one execution under armed, never-tripping limits.
    pub governed_seconds: f64,
    /// `governed_seconds / baseline_seconds` (1.00 = free).
    pub overhead: f64,
}

/// The full PR 7 benchmark result.
#[derive(Clone, Debug)]
pub struct Pr7Report {
    /// One row per governed code path.
    pub rows: Vec<OverheadRow>,
    /// Geometric mean of the per-row overheads (the ≤ 1.03 acceptance
    /// bound).
    pub overhead_geomean: f64,
}

/// Benchmark scale: `smoke` keeps CI runs to a couple of seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pr7Scale {
    /// Tiny inputs, few repetitions — a bit-rot canary, not a measurement.
    Smoke,
    /// The committed `BENCH_PR7.json` numbers.
    Full,
}

/// Workload size knobs.
#[derive(Clone, Copy)]
struct Dims {
    /// Rows per relation of the generated database.
    rows: usize,
    /// Timed measurements (best one reported).
    measurements: usize,
    /// Executions per measurement.
    reps: u32,
}

impl Pr7Scale {
    fn dims(self) -> Dims {
        match self {
            Pr7Scale::Smoke => Dims {
                rows: 80,
                measurements: 3,
                reps: 3,
            },
            Pr7Scale::Full => Dims {
                rows: 2_000,
                measurements: 9,
                reps: 20,
            },
        }
    }
}

/// Armed, never-tripping limits: every governance check runs, none fires.
fn armed_limits() -> QueryLimits {
    QueryLimits::unlimited()
        .with_deadline(Duration::from_secs(3600))
        .with_budget(1u64 << 60)
}

/// Best-of-N wall time of one execution of `work`.
fn best_seconds(d: Dims, mut work: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..d.measurements {
        let start = Instant::now();
        for _ in 0..d.reps {
            work();
        }
        best = best.min(start.elapsed().as_secs_f64() / d.reps as f64);
    }
    best
}

/// A seeded database + join query whose factorised result is large enough
/// that per-record charging (not fixed cost) dominates the measurement.
fn workload(d: Dims) -> (Database, fdb_common::Query, FRep) {
    let engine = FdbEngine::new();
    for seed in 0u64..10_000 {
        let mut rng = StdRng::seed_from_u64(0x00B7_60B7 ^ seed);
        let catalog = random_schema(&mut rng, 3, 7);
        let rels: Vec<_> = catalog.rels().collect();
        let db = populate(&mut rng, &catalog, d.rows, 12, ValueDistribution::Uniform);
        let query = random_query(&mut rng, &catalog, &rels, 1);
        let Ok(base) = engine.evaluate_flat(&db, &query) else {
            continue;
        };
        if base.result.size() < d.rows * 2 {
            continue;
        }
        return (db, query, base.result);
    }
    panic!("no pr7 workload found in 10k seeds");
}

/// A fused two-selection query keeping most of the data alive (so the
/// overlay executor sweeps, prunes and emits a full-size arena).
fn fused_query(rep: &FRep) -> FactorisedQuery {
    let attr = rep.visible_attrs()[0];
    FactorisedQuery::default()
        .with_const_selection(fdb_common::ConstSelection {
            attr,
            op: ComparisonOp::Ge,
            value: Value::new(2),
        })
        .with_const_selection(fdb_common::ConstSelection {
            attr,
            op: ComparisonOp::Le,
            value: Value::new(11),
        })
}

fn row(name: &str, singletons: u64, d: Dims, baseline: f64, governed: f64) -> OverheadRow {
    OverheadRow {
        name: name.to_string(),
        singletons,
        reps: d.reps,
        baseline_seconds: baseline,
        governed_seconds: governed,
        overhead: governed / baseline,
    }
}

fn geomean(overheads: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = overheads.fold((0.0f64, 0usize), |(s, n), x| (s + x.ln(), n + 1));
    (sum / n.max(1) as f64).exp()
}

/// Runs the full PR 7 benchmark at the given scale.
pub fn run(scale: Pr7Scale) -> Pr7Report {
    let d = scale.dims();
    let engine = FdbEngine::new();
    let (db, query, rep) = workload(d);
    let singletons = rep.size() as u64;
    let limits = armed_limits();
    let mut rows = Vec::new();

    // Semi-join construction: the top-down build charges per candidate.
    let search = fdb_plan::optimal_ftree(db.catalog(), &query, |r| db.rel_len(r) as u64)
        .expect("workload optimises");
    {
        let want = build_frep(&db, &query, &search.tree).expect("baseline build");
        let got = build_frep_ctx(&db, &query, &search.tree, &ExecCtx::new(&limits))
            .expect("governed build");
        assert!(got.store_identical(&want), "governed build diverged");
    }
    let baseline = best_seconds(d, || {
        build_frep(&db, &query, &search.tree).expect("baseline build");
    });
    let governed = best_seconds(d, || {
        build_frep_ctx(&db, &query, &search.tree, &ExecCtx::new(&limits)).expect("governed build");
    });
    rows.push(row("semi_join_build", singletons, d, baseline, governed));

    // Fused overlay execution: sweeps, prunes and a full arena emission.
    let fq = fused_query(&rep);
    let cache = PlanCache::new();
    {
        let want = engine
            .evaluate_factorised_cached(&rep, &fq, &cache)
            .expect("baseline plan");
        let got = engine
            .evaluate_factorised_ctx(&rep, &fq, Some(&cache), &ExecCtx::new(&limits))
            .expect("governed plan");
        assert!(
            got.result.store_identical(&want.result),
            "governed plan diverged"
        );
    }
    let baseline = best_seconds(d, || {
        engine
            .evaluate_factorised_cached(&rep, &fq, &cache)
            .expect("baseline plan");
    });
    let governed = best_seconds(d, || {
        engine
            .evaluate_factorised_ctx(&rep, &fq, Some(&cache), &ExecCtx::new(&limits))
            .expect("governed plan");
    });
    rows.push(row("fused_plan", singletons, d, baseline, governed));

    // Aggregate fold: one flat bottom-up pass charging per union record.
    let baseline = best_seconds(d, || {
        aggregate::evaluate(&rep, AggregateKind::Count, &[]).expect("baseline fold");
    });
    let governed = best_seconds(d, || {
        aggregate::evaluate_ctx(&rep, AggregateKind::Count, &[], &ExecCtx::new(&limits))
            .expect("governed fold");
    });
    rows.push(row("aggregate_fold", singletons, d, baseline, governed));

    // Enumeration cursor: one charge per emitted tuple.
    let baseline = best_seconds(d, || {
        materialize(&rep).expect("baseline enumeration");
    });
    let governed = best_seconds(d, || {
        materialize_ctx(&rep, &ExecCtx::new(&limits)).expect("governed enumeration");
    });
    rows.push(row("enumerate_cursor", singletons, d, baseline, governed));

    // End-to-end serving: admission, plan cache and evaluation per request.
    let mut shared = SharedDatabase::new();
    let id = shared
        .insert("bench", rep)
        .expect("fresh database, unique name");
    let server = FdbServer::new(engine, Arc::new(shared), 1);
    let ungoverned = ServeRequest::new(id, fq.clone(), None);
    let governed_request = ungoverned.clone().with_limits(limits.clone());
    server.serve_one(&ungoverned).expect("cache warm-up");
    let baseline = best_seconds(d, || {
        server.serve_one(&ungoverned).expect("baseline serve");
    });
    let governed = best_seconds(d, || {
        server.serve_one(&governed_request).expect("governed serve");
    });
    rows.push(row("serve_one", singletons, d, baseline, governed));

    let overhead_geomean = geomean(rows.iter().map(|r| r.overhead));
    Pr7Report {
        rows,
        overhead_geomean,
    }
}

/// Serialises the report as JSON (line-oriented, like `BENCH_PR5.json`).
pub fn render_json(report: &Pr7Report) -> String {
    BenchJson::new("pr7-governance-overhead")
        .array("rows", &report.rows, |row| {
            format!(
                "{{\"name\": \"{}\", \"singletons\": {}, \"reps\": {}, \
                 \"baseline_seconds\": {:.6}, \"governed_seconds\": {:.6}, \
                 \"overhead\": {:.4}}}",
                row.name,
                row.singletons,
                row.reps,
                row.baseline_seconds,
                row.governed_seconds,
                row.overhead,
            )
        })
        .field(
            "overhead_geomean",
            format!("{:.4}", report.overhead_geomean),
        )
        .finish()
}

/// Renders the human-readable table printed by the `experiments` binary.
pub fn render_table(report: &Pr7Report) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<20} {:>12} {:>6} {:>14} {:>14} {:>9}",
        "governance overhead", "singletons", "reps", "baseline (s)", "governed (s)", "overhead"
    )
    .expect("string write");
    for row in &report.rows {
        writeln!(
            out,
            "{:<20} {:>12} {:>6} {:>14.6} {:>14.6} {:>8.2}%",
            row.name,
            row.singletons,
            row.reps,
            row.baseline_seconds,
            row.governed_seconds,
            (row.overhead - 1.0) * 100.0
        )
        .expect("string write");
    }
    writeln!(
        out,
        "geometric-mean overhead: {:.2}% (bound: +3%)",
        (report.overhead_geomean - 1.0) * 100.0
    )
    .expect("string write");
    out
}
