//! PR 1 enumeration benchmark: constant-delay enumeration throughput.
//!
//! Measures how fast [`fdb_frep::for_each_tuple`] walks factorised query
//! results — the hot loop the arena-backed representation refactor targets —
//! on the workloads of Experiments 3 and 4 plus the paper's grocery example:
//!
//! * `grocery_q1q2_join` — the Example 2 join of the grocery Q1 and Q2
//!   results, enumerated repeatedly (the representation is tiny, so the
//!   benchmark spins many repetitions);
//! * `exp3_scaling_N3000_K3` — the factorised result of a 3-equality query
//!   over three ternary relations of 3 000 tuples (uniform values);
//! * `exp3_combinatorial_K3` — the factorised result of a 3-equality query
//!   over the combinatorial dataset;
//! * `exp4_followup_K3_L1` — the result of a 1-equality follow-up query
//!   evaluated *on* the factorised K = 3 input.
//!
//! Every row reports full-enumeration throughput (tuples per second, best of
//! several timed repetitions) and one `materialize` wall time.  The
//! `experiments` binary serialises the rows as machine-readable JSON
//! (`BENCH_PR1.json`), one row object per line, so before/after comparisons
//! can be scripted.

use crate::report::BenchJson;
use fdb_core::{FactorisedQuery, FdbEngine};
use fdb_datagen::{
    combinatorial_database, grocery_database, populate, random_followup_equalities, random_query,
    random_schema, ValueDistribution,
};
use fdb_frep::{for_each_tuple, materialize, ops, FRep};
use fdb_relation::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured workload.
#[derive(Clone, Debug)]
pub struct Pr1Row {
    /// Workload name (stable across refactors, used to pair baselines).
    pub name: String,
    /// Number of singletons of the enumerated representation.
    pub singletons: u64,
    /// Number of tuples one full enumeration produces.
    pub tuples: u128,
    /// Enumeration repetitions per timed measurement.
    pub reps: u32,
    /// Wall time of the best timed measurement (`reps` full enumerations).
    pub enum_seconds: f64,
    /// Enumeration throughput: `reps × tuples / enum_seconds`.
    pub tuples_per_sec: f64,
    /// Wall time of one `materialize` call.
    pub materialize_seconds: f64,
}

/// Total tuples a timed measurement should aim to enumerate.
const TARGET_TUPLES_PER_MEASUREMENT: u128 = 4_000_000;
/// Timed measurements per row; the best (fastest) one is reported.
const MEASUREMENTS: usize = 5;

/// Measures one representation, spinning enough repetitions to make the
/// timing robust even for tiny inputs.
fn measure(name: &str, rep: &FRep) -> Pr1Row {
    let tuples = rep.tuple_count();
    let reps: u32 = TARGET_TUPLES_PER_MEASUREMENT
        .checked_div(tuples)
        .map_or(1, |r| r.clamp(1, 200_000) as u32);

    // Warm-up plus a checksum so the enumeration cannot be optimised away.
    let mut checksum = 0u64;
    let mut enumerated = 0u128;
    for_each_tuple(rep, |t| {
        enumerated += 1;
        for v in t {
            checksum = checksum.wrapping_add(v.raw());
        }
    });
    assert_eq!(
        enumerated, tuples,
        "{name}: tuple_count disagrees with enumeration"
    );

    let mut best = f64::INFINITY;
    for _ in 0..MEASUREMENTS {
        let start = Instant::now();
        for _ in 0..reps {
            let mut sink = 0u64;
            for_each_tuple(rep, |t| {
                for v in t {
                    sink = sink.wrapping_add(v.raw());
                }
            });
            assert_eq!(
                sink, checksum,
                "{name}: enumeration changed between repetitions"
            );
        }
        best = best.min(start.elapsed().as_secs_f64());
    }

    let mat_start = Instant::now();
    let flat = materialize(rep).expect("materialisation succeeds");
    let materialize_seconds = mat_start.elapsed().as_secs_f64();
    assert_eq!(flat.len() as u128, tuples, "{name}: materialize row count");

    Pr1Row {
        name: name.to_string(),
        singletons: rep.size() as u64,
        tuples,
        reps,
        enum_seconds: best,
        tuples_per_sec: (reps as u128 * tuples) as f64 / best.max(1e-12),
        materialize_seconds,
    }
}

/// The grocery Example 2 join: Q1 ⋈ Q2 on item and location, kept factorised.
fn grocery_join() -> FRep {
    let g = grocery_database();
    let engine = FdbEngine::new();
    let r1 = engine.evaluate_flat(&g.db, &g.q1()).expect("Q1 evaluates");
    let r2 = engine.evaluate_flat(&g.db, &g.q2()).expect("Q2 evaluates");
    let product = ops::product(r1.result, r2.result).expect("disjoint attributes");
    let fq = FactorisedQuery::equalities(vec![
        (g.attr("Orders.item"), g.attr("Produce.item")),
        (g.attr("Store.location"), g.attr("Serve.location")),
    ]);
    engine
        .evaluate_factorised(&product, &fq)
        .expect("join evaluates")
        .result
}

/// Tuple-count band a benchmark representation should fall into: enough
/// tuples for the timing to be dominated by enumeration, few enough for the
/// sweep to stay fast.
const TUPLE_BAND: std::ops::RangeInclusive<u128> = 50_000..=50_000_000;

/// The exp3 scaling workload representation (uniform, N = 3000): the first
/// K = 3 query (scanning deterministic seeds) whose result lands in the
/// benchmark's tuple band.
fn exp3_scaling() -> FRep {
    for seed in 0u64.. {
        let mut rng = StdRng::seed_from_u64(0x5031_3A33 ^ seed);
        let catalog = random_schema(&mut rng, 3, 9);
        let rels: Vec<_> = catalog.rels().collect();
        let db = populate(&mut rng, &catalog, 3_000, 100, ValueDistribution::Uniform);
        let query = random_query(&mut rng, &catalog, &rels, 3);
        let rep = FdbEngine::new()
            .evaluate_flat(&db, &query)
            .expect("scaling query evaluates")
            .result;
        if TUPLE_BAND.contains(&rep.tuple_count()) {
            return rep;
        }
    }
    unreachable!("some seed produces a result in the tuple band");
}

/// The combinatorial database and a K-equality factorised result in the
/// benchmark's tuple band (scanning deterministic seeds).
fn exp3_combinatorial(k: usize) -> (Database, fdb_common::Query, FRep) {
    for seed in 0u64.. {
        let mut rng = StdRng::seed_from_u64(0x5031_3A43 ^ seed);
        let db = combinatorial_database(&mut rng, ValueDistribution::Uniform);
        let catalog = db.catalog().clone();
        let rels: Vec<_> = catalog.rels().collect();
        let query = random_query(&mut rng, &catalog, &rels, k);
        let rep = FdbEngine::new()
            .evaluate_flat(&db, &query)
            .expect("combinatorial query evaluates")
            .result;
        if TUPLE_BAND.contains(&rep.tuple_count()) {
            return (db, query, rep);
        }
    }
    unreachable!("some seed produces a result in the tuple band");
}

/// Runs a smoke-scale PR 1 benchmark: the grocery workload only, with a
/// reduced tuple target — a CI bit-rot canary, not a measurement.
pub fn run_smoke() -> Vec<Pr1Row> {
    let mut row = {
        let rep = grocery_join();
        let tuples = rep.tuple_count();
        let reps: u32 = (100_000u128)
            .checked_div(tuples)
            .map_or(1, |r| r.clamp(1, 10_000) as u32);
        let mut checksum = 0u64;
        for_each_tuple(&rep, |t| {
            for v in t {
                checksum = checksum.wrapping_add(v.raw());
            }
        });
        let start = Instant::now();
        for _ in 0..reps {
            let mut sink = 0u64;
            for_each_tuple(&rep, |t| {
                for v in t {
                    sink = sink.wrapping_add(v.raw());
                }
            });
            assert_eq!(sink, checksum, "smoke: enumeration changed");
        }
        let enum_seconds = start.elapsed().as_secs_f64();
        let mat_start = Instant::now();
        let flat = materialize(&rep).expect("materialisation succeeds");
        assert_eq!(flat.len() as u128, tuples, "smoke: materialize row count");
        Pr1Row {
            name: "grocery_q1q2_join".into(),
            singletons: rep.size() as u64,
            tuples,
            reps,
            enum_seconds,
            tuples_per_sec: (reps as u128 * tuples) as f64 / enum_seconds.max(1e-12),
            materialize_seconds: mat_start.elapsed().as_secs_f64(),
        }
    };
    row.name = format!("{}_smoke", row.name);
    vec![row]
}

/// Runs the full PR 1 benchmark.
pub fn run() -> Vec<Pr1Row> {
    let mut rows = Vec::new();

    rows.push(measure("grocery_q1q2_join", &grocery_join()));
    rows.push(measure("exp3_scaling_N3000_K3", &exp3_scaling()));

    let (db, base_query, base_rep) = exp3_combinatorial(3);
    rows.push(measure("exp3_combinatorial_K3", &base_rep));

    // A follow-up query on the factorised input whose result still has a
    // meaningful number of tuples (L = 1, first seed that is non-empty).
    for seed in 0u64.. {
        let mut rng = StdRng::seed_from_u64(0x5031_3A44 ^ seed);
        let follow = random_followup_equalities(&mut rng, db.catalog(), &base_query, 1);
        if follow.is_empty() {
            continue;
        }
        let followed = FdbEngine::new()
            .evaluate_factorised(&base_rep, &FactorisedQuery::equalities(follow))
            .expect("follow-up evaluates")
            .result;
        if followed.tuple_count() >= 1_000 {
            rows.push(measure("exp4_followup_K3_L1", &followed));
            break;
        }
    }

    rows
}

/// Serialises rows as JSON: one row object per line inside a `rows` array.
pub fn render_json(rows: &[Pr1Row]) -> String {
    BenchJson::new("pr1-frep-enumeration")
        .array("rows", rows, |row| {
            format!(
                "{{\"name\": \"{}\", \"singletons\": {}, \"tuples\": {}, \"reps\": {}, \
                 \"enum_seconds\": {:.6}, \"tuples_per_sec\": {:.1}, \
                 \"materialize_seconds\": {:.6}}}",
                row.name,
                row.singletons,
                row.tuples,
                row.reps,
                row.enum_seconds,
                row.tuples_per_sec,
                row.materialize_seconds,
            )
        })
        .finish()
}

/// Parses rows back from the JSON rendered by [`render_json`] (line-oriented;
/// used to pair a committed baseline with a fresh run).
pub fn parse_json(text: &str) -> Vec<Pr1Row> {
    fn field(line: &str, key: &str) -> Option<String> {
        let pos = line.find(&format!("\"{key}\": "))? + key.len() + 4;
        let rest = &line[pos..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_string())
    }
    text.lines()
        .filter(|l| l.contains("\"name\""))
        .filter_map(|line| {
            Some(Pr1Row {
                name: field(line, "name")?,
                singletons: field(line, "singletons")?.parse().ok()?,
                tuples: field(line, "tuples")?.parse().ok()?,
                reps: field(line, "reps")?.parse().ok()?,
                enum_seconds: field(line, "enum_seconds")?.parse().ok()?,
                tuples_per_sec: field(line, "tuples_per_sec")?.parse().ok()?,
                materialize_seconds: field(line, "materialize_seconds")?.parse().ok()?,
            })
        })
        .collect()
}

/// Renders the PR 1 comparison JSON: the fresh rows plus, when a baseline is
/// available, the baseline rows and per-row/geometric-mean speedups.
pub fn render_comparison_json(current: &[Pr1Row], baseline: Option<&[Pr1Row]>) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"pr1-frep-enumeration\",\n");
    out.push_str("  \"arena\": ");
    out.push_str(&indent_block(&render_json(current)));
    if let Some(base) = baseline {
        out.push_str(",\n  \"baseline\": ");
        out.push_str(&indent_block(&render_json(base)));
        let mut speedups = Vec::new();
        out.push_str(",\n  \"speedup_tuples_per_sec\": {\n");
        let paired: Vec<_> = current
            .iter()
            .filter_map(|c| base.iter().find(|b| b.name == c.name).map(|b| (c, b)))
            .collect();
        for (i, (c, b)) in paired.iter().enumerate() {
            let ratio = c.tuples_per_sec / b.tuples_per_sec.max(1e-12);
            speedups.push(ratio);
            let comma = if i + 1 < paired.len() { "," } else { "" };
            writeln!(out, "    \"{}\": {:.3}{}", c.name, ratio, comma).expect("string write");
        }
        out.push_str("  },\n");
        let geomean = if speedups.is_empty() {
            0.0
        } else {
            (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp()
        };
        writeln!(out, "  \"speedup_geomean\": {geomean:.3}").expect("string write");
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

fn indent_block(json: &str) -> String {
    let mut out = String::new();
    for (i, line) in json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rows_round_trip() {
        let rows = vec![Pr1Row {
            name: "sample".into(),
            singletons: 42,
            tuples: 1_000,
            reps: 7,
            enum_seconds: 0.25,
            tuples_per_sec: 28_000.0,
            materialize_seconds: 0.125,
        }];
        let parsed = parse_json(&render_json(&rows));
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "sample");
        assert_eq!(parsed[0].singletons, 42);
        assert_eq!(parsed[0].tuples, 1_000);
        assert_eq!(parsed[0].reps, 7);
        assert!((parsed[0].tuples_per_sec - 28_000.0).abs() < 1e-6);
    }

    #[test]
    fn comparison_reports_speedups() {
        let base = vec![Pr1Row {
            name: "w".into(),
            singletons: 1,
            tuples: 10,
            reps: 1,
            enum_seconds: 1.0,
            tuples_per_sec: 10.0,
            materialize_seconds: 1.0,
        }];
        let mut current = base.clone();
        current[0].tuples_per_sec = 25.0;
        let text = render_comparison_json(&current, Some(&base));
        assert!(text.contains("\"w\": 2.500"));
        assert!(text.contains("\"speedup_geomean\": 2.500"));
        // Without a baseline the comparison is still valid JSON-ish output.
        let solo = render_comparison_json(&current, None);
        assert!(solo.contains("\"arena\""));
        assert!(!solo.contains("baseline"));
    }

    #[test]
    fn grocery_measurement_is_consistent() {
        let row = measure("grocery", &grocery_join());
        assert!(row.tuples > 0);
        assert!(row.tuples_per_sec > 0.0);
        assert!(row.reps >= 1);
    }
}
