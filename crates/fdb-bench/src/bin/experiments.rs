//! Command-line harness regenerating the paper's experiments.
//!
//! ```bash
//! cargo run --release -p fdb-bench --bin experiments -- all --quick
//! cargo run --release -p fdb-bench --bin experiments -- exp1
//! cargo run --release -p fdb-bench --bin experiments -- exp3 --quick
//! ```
//!
//! Every experiment prints a plain-text table whose rows correspond to the
//! series of the paper's figures.

use fdb_bench::{
    exp1, exp2, exp3, exp4, pr1, pr10, pr2, pr3, pr4, pr5, pr6, pr7, pr8, pr9, report, Scale,
};
use std::time::Instant;

/// Shared driver of the PR 2+ benchmarks: run at the requested scale, print
/// the table, write the JSON report (`--scale smoke` skips the file).
fn run_bench<R>(
    label: &str,
    path: &str,
    smoke: bool,
    run: impl FnOnce(bool) -> R,
    table: impl FnOnce(&R) -> String,
    json: impl FnOnce(&R) -> String,
) {
    let start = Instant::now();
    let report = run(smoke);
    print!("{}", table(&report));
    report::write_bench_file(path, &json(&report), smoke);
    println!("({label} finished in {:?})\n", start.elapsed());
}

/// Runs the PR 1 enumeration benchmark and writes its machine-readable
/// output.  With `--baseline`, writes `BENCH_BASELINE.json` (raw rows) for a
/// later run to compare against; otherwise writes `BENCH_PR1.json`, merging
/// `BENCH_BASELINE.json` (if present in the working directory) and reporting
/// per-workload and geometric-mean speedups.  At `--scale smoke` only the
/// grocery workload runs and nothing is written — a CI bit-rot canary.
fn run_bench_pr1(baseline_mode: bool, smoke: bool) {
    let start = Instant::now();
    let rows = if smoke { pr1::run_smoke() } else { pr1::run() };
    for row in &rows {
        println!(
            "{:<26} {:>12} tuples  {:>12.0} tuples/s  (reps {}, materialize {:.4}s)",
            row.name, row.tuples, row.tuples_per_sec, row.reps, row.materialize_seconds
        );
    }
    if smoke {
        println!("\n(smoke scale: no file written)");
    } else if baseline_mode {
        std::fs::write("BENCH_BASELINE.json", pr1::render_json(&rows))
            .expect("writing BENCH_BASELINE.json");
        println!("\nwrote BENCH_BASELINE.json");
    } else {
        let baseline_rows = std::fs::read_to_string("BENCH_BASELINE.json")
            .ok()
            .map(|text| pr1::parse_json(&text));
        let output = pr1::render_comparison_json(&rows, baseline_rows.as_deref());
        std::fs::write("BENCH_PR1.json", &output).expect("writing BENCH_PR1.json");
        println!("\nwrote BENCH_PR1.json");
        if baseline_rows.is_none() {
            println!("(no BENCH_BASELINE.json found — emitted fresh rows only)");
        }
    }
    println!("(bench-pr1 finished in {:?})\n", start.elapsed());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    // `--scale smoke` shrinks the PR benchmarks to a CI-friendly canary run;
    // `--scale full` (the default) runs the committed measurement sizes.
    // The scale value is consumed here so it never leaks into the
    // experiment-selector list below.
    let mut scale_value: Option<&str> = None;
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        match args.get(pos + 1).map(String::as_str) {
            Some(v @ ("smoke" | "full")) => scale_value = Some(v),
            Some(v) => {
                eprintln!("error: unknown --scale value {v:?} (expected \"smoke\" or \"full\")");
                std::process::exit(2);
            }
            None => {
                eprintln!("error: --scale requires a value (\"smoke\" or \"full\")");
                std::process::exit(2);
            }
        }
    }
    let smoke = scale_value == Some("smoke");
    let which: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with('-') && Some(*a) != scale_value)
        .collect();
    let run_all = which.is_empty() || which.contains(&"all");

    if which.contains(&"bench-pr1") {
        run_bench_pr1(args.iter().any(|a| a == "--baseline"), smoke);
        return;
    }
    if which.contains(&"bench-pr2") {
        // Arena-native structural operators vs the thaw path, plus direct
        // construction vs the forest path.
        run_bench(
            "bench-pr2",
            "BENCH_PR2.json",
            smoke,
            |smoke| {
                pr2::run(if smoke {
                    pr2::Pr2Scale::Smoke
                } else {
                    pr2::Pr2Scale::Full
                })
            },
            pr2::render_table,
            pr2::render_json,
        );
        return;
    }
    if which.contains(&"bench-pr3") {
        // Fused single-pass f-plan execution vs step-wise operator runs.
        run_bench(
            "bench-pr3",
            "BENCH_PR3.json",
            smoke,
            |smoke| {
                pr3::run(if smoke {
                    pr3::Pr3Scale::Smoke
                } else {
                    pr3::Pr3Scale::Full
                })
            },
            pr3::render_table,
            pr3::render_json,
        );
        return;
    }
    if which.contains(&"bench-pr4") {
        // Factorised aggregation vs materialise-then-aggregate, and the
        // arena pass vs the fused overlay pass.
        run_bench(
            "bench-pr4",
            "BENCH_PR4.json",
            smoke,
            |smoke| {
                pr4::run(if smoke {
                    pr4::Pr4Scale::Smoke
                } else {
                    pr4::Pr4Scale::Full
                })
            },
            pr4::render_table,
            pr4::render_json,
        );
        return;
    }
    if which.contains(&"bench-pr5") {
        // Whole-plan fusion vs PR 3 segmented execution on barrier-bearing
        // plans, plus select-then-aggregate sinks.
        run_bench(
            "bench-pr5",
            "BENCH_PR5.json",
            smoke,
            |smoke| {
                pr5::run(if smoke {
                    pr5::Pr5Scale::Smoke
                } else {
                    pr5::Pr5Scale::Full
                })
            },
            pr5::render_table,
            pr5::render_json,
        );
        return;
    }
    if which.contains(&"bench-pr7") {
        // Governance overhead: armed-but-never-tripping limits vs the
        // ungoverned APIs across every governed code path.
        run_bench(
            "bench-pr7",
            "BENCH_PR7.json",
            smoke,
            |smoke| {
                pr7::run(if smoke {
                    pr7::Pr7Scale::Smoke
                } else {
                    pr7::Pr7Scale::Full
                })
            },
            pr7::render_table,
            pr7::render_json,
        );
        return;
    }
    if which.contains(&"bench-pr8") {
        // Durability and hot swap: snapshot save/load throughput, the
        // structural-verification overhead of the loader, swap latency
        // under concurrent serving, and targeted cache invalidation.
        run_bench(
            "bench-pr8",
            "BENCH_PR8.json",
            smoke,
            |smoke| {
                pr8::run(if smoke {
                    pr8::Pr8Scale::Smoke
                } else {
                    pr8::Pr8Scale::Full
                })
            },
            pr8::render_table,
            pr8::render_json,
        );
        return;
    }
    if which.contains(&"bench-pr9") {
        // Analytics heads: ordered enumeration via costed restructuring vs
        // materialise-then-sort (including the honest refused-lift row),
        // and grouped aggregation vs plain-iterator grouping.
        run_bench(
            "bench-pr9",
            "BENCH_PR9.json",
            smoke,
            |smoke| {
                pr9::run(if smoke {
                    pr9::Pr9Scale::Smoke
                } else {
                    pr9::Pr9Scale::Full
                })
            },
            pr9::render_table,
            pr9::render_json,
        );
        return;
    }
    if which.contains(&"bench-pr10") {
        // SoA entry layout + vectorised scan kernels: the interleaved PR 9
        // record baseline vs the scalar kernels over the split value array
        // vs the dispatched (AVX2 with `--features simd`) kernels.
        run_bench(
            "bench-pr10",
            "BENCH_PR10.json",
            smoke,
            |smoke| {
                pr10::run(if smoke {
                    pr10::Pr10Scale::Smoke
                } else {
                    pr10::Pr10Scale::Full
                })
            },
            pr10::render_table,
            pr10::render_json,
        );
        return;
    }
    if which.contains(&"bench-pr6") {
        // Concurrent serving: stall-model and pure-CPU queries/second under
        // a Zipf-skewed query mix, plus parallel enumeration.
        run_bench(
            "bench-pr6",
            "BENCH_PR6.json",
            smoke,
            |smoke| {
                pr6::run(if smoke {
                    pr6::Pr6Scale::Smoke
                } else {
                    pr6::Pr6Scale::Full
                })
            },
            pr6::render_table,
            pr6::render_json,
        );
        return;
    }

    println!(
        "FDB experiment harness — scale: {:?} (use --quick for a fast run)\n",
        scale
    );

    if run_all || which.contains(&"exp1") {
        let start = Instant::now();
        // The paper sweeps R = 1..8, K = 1..9; the quick scale trims the
        // largest settings to keep the run short.
        let (max_r, max_k) = match scale {
            Scale::Quick => (6, 6),
            Scale::Full => (8, 9),
        };
        let rows = exp1::run(scale, max_r, max_k);
        println!("{}", report::render_exp1(&rows));
        println!("(exp1 finished in {:?})\n", start.elapsed());
    }

    if run_all || which.contains(&"exp2") {
        let start = Instant::now();
        let (max_k, max_l) = match scale {
            Scale::Quick => (6, 4),
            Scale::Full => (8, 6),
        };
        let rows = exp2::run(scale, max_k, max_l);
        println!("{}", report::render_exp2(&rows));
        println!("(exp2 finished in {:?})\n", start.elapsed());
    }

    if run_all || which.contains(&"exp3") {
        let start = Instant::now();
        let rows = exp3::run(scale);
        println!("{}", report::render_exp3(&rows));
        println!("(exp3 finished in {:?})\n", start.elapsed());
    }

    if run_all || which.contains(&"exp4") {
        let start = Instant::now();
        let rows = exp4::run(scale);
        println!("{}", report::render_exp4(&rows));
        println!("(exp4 finished in {:?})\n", start.elapsed());
    }
}
