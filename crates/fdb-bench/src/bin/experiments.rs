//! Command-line harness regenerating the paper's experiments.
//!
//! ```bash
//! cargo run --release -p fdb-bench --bin experiments -- all --quick
//! cargo run --release -p fdb-bench --bin experiments -- exp1
//! cargo run --release -p fdb-bench --bin experiments -- exp3 --quick
//! ```
//!
//! Every experiment prints a plain-text table whose rows correspond to the
//! series of the paper's figures; `EXPERIMENTS.md` records a full run.

use fdb_bench::{exp1, exp2, exp3, exp4, pr1, pr2, pr3, pr4, pr5, report, Scale};
use std::time::Instant;

/// Runs the PR 1 enumeration benchmark and writes its machine-readable
/// output.  With `--baseline`, writes `BENCH_BASELINE.json` (raw rows) for a
/// later run to compare against; otherwise writes `BENCH_PR1.json`, merging
/// `BENCH_BASELINE.json` (if present in the working directory) and reporting
/// per-workload and geometric-mean speedups.  At `--scale smoke` only the
/// grocery workload runs and nothing is written — a CI bit-rot canary.
fn run_bench_pr1(baseline_mode: bool, smoke: bool) {
    let start = Instant::now();
    let rows = if smoke { pr1::run_smoke() } else { pr1::run() };
    for row in &rows {
        println!(
            "{:<26} {:>12} tuples  {:>12.0} tuples/s  (reps {}, materialize {:.4}s)",
            row.name, row.tuples, row.tuples_per_sec, row.reps, row.materialize_seconds
        );
    }
    if smoke {
        println!("\n(smoke scale: no file written)");
    } else if baseline_mode {
        std::fs::write("BENCH_BASELINE.json", pr1::render_json(&rows))
            .expect("writing BENCH_BASELINE.json");
        println!("\nwrote BENCH_BASELINE.json");
    } else {
        let baseline_rows = std::fs::read_to_string("BENCH_BASELINE.json")
            .ok()
            .map(|text| pr1::parse_json(&text));
        let output = pr1::render_comparison_json(&rows, baseline_rows.as_deref());
        std::fs::write("BENCH_PR1.json", &output).expect("writing BENCH_PR1.json");
        println!("\nwrote BENCH_PR1.json");
        if baseline_rows.is_none() {
            println!("(no BENCH_BASELINE.json found — emitted fresh rows only)");
        }
    }
    println!("(bench-pr1 finished in {:?})\n", start.elapsed());
}

/// Runs the PR 2 structural-operator and construction benchmark (arena
/// native vs thaw path) and writes `BENCH_PR2.json`.  At `--scale smoke`
/// the inputs shrink and nothing is written.
fn run_bench_pr2(smoke: bool) {
    let start = Instant::now();
    let scale = if smoke {
        pr2::Pr2Scale::Smoke
    } else {
        pr2::Pr2Scale::Full
    };
    let report = pr2::run(scale);
    print!("{}", pr2::render_table(&report));
    if smoke {
        println!("\n(smoke scale: no file written)");
    } else {
        std::fs::write("BENCH_PR2.json", pr2::render_json(&report))
            .expect("writing BENCH_PR2.json");
        println!("\nwrote BENCH_PR2.json");
    }
    println!("(bench-pr2 finished in {:?})\n", start.elapsed());
}

/// Runs the PR 3 fused-vs-stepwise plan execution benchmark and writes
/// `BENCH_PR3.json`.  At `--scale smoke` the inputs shrink and nothing is
/// written.
fn run_bench_pr3(smoke: bool) {
    let start = Instant::now();
    let scale = if smoke {
        pr3::Pr3Scale::Smoke
    } else {
        pr3::Pr3Scale::Full
    };
    let report = pr3::run(scale);
    print!("{}", pr3::render_table(&report));
    if smoke {
        println!("\n(smoke scale: no file written)");
    } else {
        std::fs::write("BENCH_PR3.json", pr3::render_json(&report))
            .expect("writing BENCH_PR3.json");
        println!("\nwrote BENCH_PR3.json");
    }
    println!("(bench-pr3 finished in {:?})\n", start.elapsed());
}

/// Runs the PR 4 factorised-aggregation benchmark (factorised vs
/// materialise-then-aggregate, and arena pass vs overlay pass) and writes
/// `BENCH_PR4.json`.  At `--scale smoke` the inputs shrink and nothing is
/// written.
fn run_bench_pr4(smoke: bool) {
    let start = Instant::now();
    let scale = if smoke {
        pr4::Pr4Scale::Smoke
    } else {
        pr4::Pr4Scale::Full
    };
    let report = pr4::run(scale);
    print!("{}", pr4::render_table(&report));
    if smoke {
        println!("\n(smoke scale: no file written)");
    } else {
        std::fs::write("BENCH_PR4.json", pr4::render_json(&report))
            .expect("writing BENCH_PR4.json");
        println!("\nwrote BENCH_PR4.json");
    }
    println!("(bench-pr4 finished in {:?})\n", start.elapsed());
}

/// Runs the PR 5 whole-plan-fusion benchmark (fused vs PR 3 segmented
/// execution on barrier-bearing plans, plus select-then-aggregate sinks)
/// and writes `BENCH_PR5.json`.  At `--scale smoke` the inputs shrink and
/// nothing is written.
fn run_bench_pr5(smoke: bool) {
    let start = Instant::now();
    let scale = if smoke {
        pr5::Pr5Scale::Smoke
    } else {
        pr5::Pr5Scale::Full
    };
    let report = pr5::run(scale);
    print!("{}", pr5::render_table(&report));
    if smoke {
        println!("\n(smoke scale: no file written)");
    } else {
        std::fs::write("BENCH_PR5.json", pr5::render_json(&report))
            .expect("writing BENCH_PR5.json");
        println!("\nwrote BENCH_PR5.json");
    }
    println!("(bench-pr5 finished in {:?})\n", start.elapsed());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    // `--scale smoke` shrinks the PR benchmarks to a CI-friendly canary run;
    // `--scale full` (the default) runs the committed measurement sizes.
    // The scale value is consumed here so it never leaks into the
    // experiment-selector list below.
    let mut scale_value: Option<&str> = None;
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        match args.get(pos + 1).map(String::as_str) {
            Some(v @ ("smoke" | "full")) => scale_value = Some(v),
            Some(v) => {
                eprintln!("error: unknown --scale value {v:?} (expected \"smoke\" or \"full\")");
                std::process::exit(2);
            }
            None => {
                eprintln!("error: --scale requires a value (\"smoke\" or \"full\")");
                std::process::exit(2);
            }
        }
    }
    let smoke = scale_value == Some("smoke");
    let which: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with('-') && Some(*a) != scale_value)
        .collect();
    let run_all = which.is_empty() || which.contains(&"all");

    if which.contains(&"bench-pr1") {
        run_bench_pr1(args.iter().any(|a| a == "--baseline"), smoke);
        return;
    }
    if which.contains(&"bench-pr2") {
        run_bench_pr2(smoke);
        return;
    }
    if which.contains(&"bench-pr3") {
        run_bench_pr3(smoke);
        return;
    }
    if which.contains(&"bench-pr4") {
        run_bench_pr4(smoke);
        return;
    }
    if which.contains(&"bench-pr5") {
        run_bench_pr5(smoke);
        return;
    }

    println!(
        "FDB experiment harness — scale: {:?} (use --quick for a fast run)\n",
        scale
    );

    if run_all || which.contains(&"exp1") {
        let start = Instant::now();
        // The paper sweeps R = 1..8, K = 1..9; the quick scale trims the
        // largest settings to keep the run short.
        let (max_r, max_k) = match scale {
            Scale::Quick => (6, 6),
            Scale::Full => (8, 9),
        };
        let rows = exp1::run(scale, max_r, max_k);
        println!("{}", report::render_exp1(&rows));
        println!("(exp1 finished in {:?})\n", start.elapsed());
    }

    if run_all || which.contains(&"exp2") {
        let start = Instant::now();
        let (max_k, max_l) = match scale {
            Scale::Quick => (6, 4),
            Scale::Full => (8, 6),
        };
        let rows = exp2::run(scale, max_k, max_l);
        println!("{}", report::render_exp2(&rows));
        println!("(exp2 finished in {:?})\n", start.elapsed());
    }

    if run_all || which.contains(&"exp3") {
        let start = Instant::now();
        let rows = exp3::run(scale);
        println!("{}", report::render_exp3(&rows));
        println!("(exp3 finished in {:?})\n", start.elapsed());
    }

    if run_all || which.contains(&"exp4") {
        let start = Instant::now();
        let rows = exp4::run(scale);
        println!("{}", report::render_exp4(&rows));
        println!("(exp4 finished in {:?})\n", start.elapsed());
    }
}
