//! Experiment 1 (Figure 5): query optimisation on flat data.
//!
//! For schemas with `A = 40` attributes over `R = 1..8` relations and queries
//! of `K = 1..9` equality selections, the FDB optimiser searches for an
//! optimal f-tree of the query result.  The paper reports (left plot) the
//! optimisation time and (right plot) the average cost `s(T)` of the chosen
//! f-tree: the cost is 1 for up to two relations and almost always ≤ 2 even
//! for nine equalities over eight relations, and the search finishes well
//! under a second for fewer than eight joins.

use crate::Scale;
use fdb_common::RelId;
use fdb_datagen::{random_query, random_schema};
use fdb_plan::optimal_ftree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Number of attributes used by the experiment (as in the paper).
pub const ATTRIBUTES: usize = 40;

/// One averaged measurement point of Experiment 1.
#[derive(Clone, Debug)]
pub struct Exp1Row {
    /// Number of relations `R`.
    pub relations: usize,
    /// Number of equality selections `K`.
    pub equalities: usize,
    /// Average optimisation time.
    pub optimisation_time: Duration,
    /// Average cost `s(T)` of the optimal f-tree.
    pub cost: f64,
    /// Number of repetitions averaged over.
    pub repetitions: usize,
}

/// Sweeps `R = 1..=max_relations`, `K = 1..=max_equalities` and averages
/// optimisation time and optimal cost over `scale.repetitions()` random
/// queries per configuration.
pub fn run(scale: Scale, max_relations: usize, max_equalities: usize) -> Vec<Exp1Row> {
    let mut rng = StdRng::seed_from_u64(0xFDB1);
    let mut rows = Vec::new();
    for relations in 1..=max_relations {
        for equalities in 1..=max_equalities {
            let reps = scale.repetitions();
            let mut total_time = Duration::ZERO;
            let mut total_cost = 0.0;
            let mut counted = 0usize;
            for _ in 0..reps {
                let catalog = random_schema(&mut rng, relations, ATTRIBUTES);
                let rels: Vec<RelId> = catalog.rels().collect();
                let query = random_query(&mut rng, &catalog, &rels, equalities);
                let start = Instant::now();
                let result = optimal_ftree(&catalog, &query, |_| 1)
                    .expect("optimal f-tree search succeeds on generated queries");
                total_time += start.elapsed();
                total_cost += result.cost;
                counted += 1;
            }
            rows.push(Exp1Row {
                relations,
                equalities,
                optimisation_time: total_time / counted.max(1) as u32,
                cost: total_cost / counted.max(1) as f64,
                repetitions: counted,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_shows_the_paper_trends() {
        let rows = run(Scale::Quick, 3, 3);
        assert_eq!(rows.len(), 9);
        // Queries over one or two relations always have optimal cost 1.
        for row in rows.iter().filter(|r| r.relations <= 2) {
            assert!(
                (row.cost - 1.0).abs() < 1e-6,
                "R={} K={} cost={}",
                row.relations,
                row.equalities,
                row.cost
            );
        }
        // Costs never exceed the number of relations and never drop below 1.
        for row in &rows {
            assert!(row.cost >= 1.0 - 1e-9);
            assert!(row.cost <= row.relations as f64 + 1e-9);
        }
    }
}
