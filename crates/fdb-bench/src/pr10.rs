//! PR 10 benchmark: the SoA entry layout and the vectorised scan kernels.
//!
//! PR 10 split the arena's interleaved entry records (`value` + `kids_start`,
//! 16 bytes with padding) into parallel value / kid-offset arrays and moved
//! the hot scans onto dispatched kernels (`fdb_frep::kernel`).  This
//! benchmark prices the three layers against each other on the scan shapes
//! the engine actually runs:
//!
//! * **aos** — the PR 9 baseline, reproduced honestly: the interleaved
//!   record layout is emulated inline (same 16-byte records, same scalar
//!   loops the old `store.rs` ran) so the baseline survives the refactor
//!   that deleted it;
//! * **soa** — the same scalar loops over the split value array
//!   (`kernel::*_scalar`): the pure layout effect, half the scanned bytes;
//! * **simd** — the runtime-dispatched kernels.  In a default build these
//!   *are* the scalar kernels; build `experiments` with `--features simd`
//!   (and an AVX2 machine) to price the vectorised paths.  The committed
//!   `BENCH_PR10.json` is generated from a `--features simd` build.
//!
//! Rows are categorised `scan` / `filter` / `probe` / `aggregate`; the
//! headline number is the geometric-mean speedup of `simd` over `aos`
//! across the scan and filter rows.  Sub-1.0 simd-vs-soa ratios are
//! committed as-is: the `tiny_union_keep_masks` row sweeps three-entry
//! blocks that fall below the kernels' dispatch thresholds (the win there
//! is the layout, not the lanes), and the `find_value_probes` row prices
//! the vectorised probe the engine measured and rejected.
//!
//! The `experiments bench-pr10` subcommand prints the table and serialises
//! the rows; `--scale smoke` shrinks the inputs so CI can run it as a
//! canary in both feature configurations.

use crate::report::BenchJson;
use fdb_common::{ComparisonOp, Value};
use fdb_frep::kernel;
use std::fmt::Write as _;
use std::time::Instant;

/// The emulated PR 9 entry record: `Value` plus kid-run offset, interleaved.
/// Alignment pads it to 16 bytes — exactly the old `EntryRec` footprint.
#[derive(Clone, Copy)]
struct AosEntry {
    value: Value,
    #[allow(dead_code)] // scanned over, never read — that's the point
    kids_start: u32,
}

/// One kernel workload measurement.
#[derive(Clone, Debug)]
pub struct Pr10Row {
    /// Workload name (stable across refactors).
    pub name: String,
    /// Row category: `scan`, `filter`, `probe` or `aggregate`.
    pub category: String,
    /// Values scanned (or probes issued) per timed repetition.
    pub elems: u64,
    /// Best wall time of the interleaved-record baseline.
    pub aos_seconds: f64,
    /// Best wall time of the scalar kernel over the split value array.
    pub soa_seconds: f64,
    /// Best wall time of the dispatched kernel (scalar in default builds).
    pub simd_seconds: f64,
    /// `aos_seconds / soa_seconds` — the pure layout effect.
    pub soa_speedup: f64,
    /// `soa_seconds / simd_seconds` — the vectorisation effect (may fall
    /// below 1.0 on dispatch-dominated shapes; committed honestly).
    pub simd_speedup: f64,
    /// `aos_seconds / simd_seconds` — the combined effect.
    pub total_speedup: f64,
}

/// The full PR 10 benchmark result.
#[derive(Clone, Debug)]
pub struct Pr10Report {
    /// Per-workload rows.
    pub rows: Vec<Pr10Row>,
    /// Geometric mean of `total_speedup` over the scan and filter rows —
    /// the acceptance headline.
    pub scan_filter_geomean: f64,
    /// Whether the dispatched kernels actually took the AVX2 paths.
    pub simd_active: bool,
}

/// Benchmark scale: `smoke` keeps CI runs to a couple of seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pr10Scale {
    /// Tiny inputs, few repetitions — a bit-rot canary, not a measurement.
    Smoke,
    /// The committed `BENCH_PR10.json` numbers.
    Full,
}

/// Workload size knobs.
#[derive(Clone, Copy)]
struct Dims {
    /// Values in the large contiguous blocks (scan / aggregate shapes).
    block: usize,
    /// Number of mid-size blocks in the filter sweep.
    filter_blocks: usize,
    /// Values per mid-size filter block.
    filter_len: usize,
    /// Number of three-entry blocks in the tiny-union sweep.
    tiny_blocks: usize,
    /// Probes per timed repetition.
    probes: usize,
    /// Average run length of the grouped stream.
    run_len: u64,
    /// Timed measurements (best one reported).
    measurements: usize,
    /// Executions per measurement.
    reps: u32,
}

impl Pr10Scale {
    fn dims(self) -> Dims {
        match self {
            Pr10Scale::Smoke => Dims {
                block: 1 << 12,
                filter_blocks: 16,
                filter_len: 256,
                tiny_blocks: 1 << 10,
                probes: 1 << 10,
                run_len: 8,
                measurements: 2,
                reps: 2,
            },
            Pr10Scale::Full => Dims {
                block: 1 << 20,
                filter_blocks: 256,
                filter_len: 4096,
                tiny_blocks: 1 << 16,
                probes: 1 << 15,
                run_len: 16,
                measurements: 5,
                reps: 10,
            },
        }
    }
}

/// Best-of-N wall time of one execution of `work`.
fn best_seconds(d: Dims, mut work: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..d.measurements {
        let start = Instant::now();
        for _ in 0..d.reps {
            work();
        }
        best = best.min(start.elapsed().as_secs_f64() / f64::from(d.reps));
    }
    best
}

/// A strictly increasing value array (gap 3, deterministic) and its
/// interleaved-record twin.
fn sorted_block(len: usize) -> (Vec<Value>, Vec<AosEntry>) {
    let values: Vec<Value> = (0..len as u64).map(|i| Value::new(i * 3 + 1)).collect();
    let aos = values
        .iter()
        .map(|&value| AosEntry {
            value,
            kids_start: 0,
        })
        .collect();
    (values, aos)
}

/// A non-decreasing grouped stream (contiguous equal runs) and its twin.
fn grouped_block(len: usize, run_len: u64) -> (Vec<Value>, Vec<AosEntry>) {
    let values: Vec<Value> = (0..len as u64).map(|i| Value::new(i / run_len)).collect();
    let aos = values
        .iter()
        .map(|&value| AosEntry {
            value,
            kids_start: 0,
        })
        .collect();
    (values, aos)
}

fn row(
    name: &str,
    category: &str,
    elems: u64,
    aos_seconds: f64,
    soa_seconds: f64,
    simd_seconds: f64,
) -> Pr10Row {
    Pr10Row {
        name: name.into(),
        category: category.into(),
        elems,
        aos_seconds,
        soa_seconds,
        simd_seconds,
        soa_speedup: aos_seconds / soa_seconds.max(1e-12),
        simd_speedup: soa_seconds / simd_seconds.max(1e-12),
        total_speedup: aos_seconds / simd_seconds.max(1e-12),
    }
}

/// `validate`'s sortedness check over one large entry block.
fn bench_scan_sorted(d: Dims) -> Pr10Row {
    let (values, aos) = sorted_block(d.block);
    // Correctness pin before any timing.
    assert_eq!(kernel::first_unsorted(&values), None);
    let aos_s = best_seconds(d, || {
        std::hint::black_box(aos.windows(2).position(|w| w[1].value <= w[0].value));
    });
    let soa_s = best_seconds(d, || {
        std::hint::black_box(kernel::first_unsorted_scalar(&values));
    });
    let simd_s = best_seconds(d, || {
        std::hint::black_box(kernel::first_unsorted(&values));
    });
    row(
        "validate_sortedness",
        "scan",
        d.block as u64,
        aos_s,
        soa_s,
        simd_s,
    )
}

/// The overlay's entry filter / `retain_and_prune` keep masks over
/// mid-size union blocks, all six comparison operators in rotation.
fn bench_filter_masks(d: Dims) -> Pr10Row {
    let blocks: Vec<(Vec<Value>, Vec<AosEntry>)> = (0..d.filter_blocks)
        .map(|_| sorted_block(d.filter_len))
        .collect();
    let rhs = Value::new((d.filter_len as u64 * 3) / 2);
    let ops = [
        ComparisonOp::Le,
        ComparisonOp::Gt,
        ComparisonOp::Eq,
        ComparisonOp::Ne,
        ComparisonOp::Lt,
        ComparisonOp::Ge,
    ];
    let mut mask = vec![false; d.filter_len];
    // Correctness pin: dispatched mask equals the per-record predicate.
    kernel::fill_keep_mask(&blocks[0].0, ComparisonOp::Le, rhs, &mut mask);
    for (i, &v) in blocks[0].0.iter().enumerate() {
        assert_eq!(mask[i], v <= rhs);
    }
    let elems = (d.filter_blocks * d.filter_len) as u64;
    let aos_s = best_seconds(d, || {
        for (i, (_, aos)) in blocks.iter().enumerate() {
            let op = ops[i % ops.len()];
            for (o, rec) in mask.iter_mut().zip(aos) {
                *o = op.eval(rec.value, rhs);
            }
            std::hint::black_box(&mask);
        }
    });
    let soa_s = best_seconds(d, || {
        for (i, (values, _)) in blocks.iter().enumerate() {
            kernel::fill_keep_mask_scalar(values, ops[i % ops.len()], rhs, &mut mask);
            std::hint::black_box(&mask);
        }
    });
    let simd_s = best_seconds(d, || {
        for (i, (values, _)) in blocks.iter().enumerate() {
            kernel::fill_keep_mask(values, ops[i % ops.len()], rhs, &mut mask);
            std::hint::black_box(&mask);
        }
    });
    row(
        "selection_keep_masks",
        "filter",
        elems,
        aos_s,
        soa_s,
        simd_s,
    )
}

/// The same keep masks over three-entry blocks: per-block dispatch overhead
/// dominates, so the simd-vs-soa ratio honestly dips to (or below) 1.0.
fn bench_tiny_filter(d: Dims) -> Pr10Row {
    let (values, aos) = sorted_block(d.tiny_blocks * 3);
    let rhs = Value::new(d.tiny_blocks as u64 * 3 / 2);
    let mut mask = [false; 3];
    let elems = (d.tiny_blocks * 3) as u64;
    let aos_s = best_seconds(d, || {
        for block in aos.chunks_exact(3) {
            for (o, rec) in mask.iter_mut().zip(block) {
                *o = rec.value <= rhs;
            }
            std::hint::black_box(&mask);
        }
    });
    let soa_s = best_seconds(d, || {
        for block in values.chunks_exact(3) {
            kernel::fill_keep_mask_scalar(block, ComparisonOp::Le, rhs, &mut mask);
            std::hint::black_box(&mask);
        }
    });
    let simd_s = best_seconds(d, || {
        for block in values.chunks_exact(3) {
            kernel::fill_keep_mask(block, ComparisonOp::Le, rhs, &mut mask);
            std::hint::black_box(&mask);
        }
    });
    row(
        "tiny_union_keep_masks",
        "filter",
        elems,
        aos_s,
        soa_s,
        simd_s,
    )
}

/// `find_value` probes (absorb's semi-join, the overlay's point lookups).
///
/// The simd column prices [`kernel::find_value_vector`], the *rejected*
/// vectorised probe: it loses to the scalar binary search at every slice
/// length, which is exactly why the engine's dispatched `find_value` stays
/// scalar (see the kernel docs).  The row is kept so the negative result
/// stays published and re-measured.
fn bench_probes(d: Dims) -> Pr10Row {
    let (values, aos) = sorted_block(d.block.min(1 << 16));
    let targets: Vec<Value> = (0..d.probes as u64)
        // Half hits (multiples of 3 plus 1), half misses, spread across the
        // whole block.
        .map(|i| Value::new((i * 7919) % (values.len() as u64 * 3)))
        .collect();
    for &t in targets.iter().take(64) {
        assert_eq!(
            kernel::find_value(&values, t),
            values.binary_search(&t).ok()
        );
        assert_eq!(
            kernel::find_value_vector(&values, t),
            values.binary_search(&t).ok()
        );
    }
    let aos_s = best_seconds(d, || {
        for &t in &targets {
            std::hint::black_box(aos.binary_search_by(|rec| rec.value.cmp(&t)).ok());
        }
    });
    let soa_s = best_seconds(d, || {
        for &t in &targets {
            std::hint::black_box(kernel::find_value_scalar(&values, t));
        }
    });
    let simd_s = best_seconds(d, || {
        for &t in &targets {
            std::hint::black_box(kernel::find_value_vector(&values, t));
        }
    });
    row(
        "find_value_probes",
        "probe",
        d.probes as u64,
        aos_s,
        soa_s,
        simd_s,
    )
}

/// The priority cursor's run-boundary detection over a grouped stream.
fn bench_run_boundaries(d: Dims) -> Pr10Row {
    let (values, aos) = grouped_block(d.block, d.run_len);
    // Correctness pin: boundaries agree with a linear scan.
    let mut start = 0;
    while start < values.len() {
        let end = kernel::run_end(&values, start);
        assert_eq!(end, kernel::run_end_scalar(&values, start));
        start = end;
    }
    let aos_s = best_seconds(d, || {
        let mut s = 0;
        let mut runs = 0u64;
        while s < aos.len() {
            let target = aos[s].value;
            let mut e = s + 1;
            while e < aos.len() && aos[e].value == target {
                e += 1;
            }
            runs += 1;
            s = e;
        }
        std::hint::black_box(runs);
    });
    let soa_s = best_seconds(d, || {
        let mut s = 0;
        let mut runs = 0u64;
        while s < values.len() {
            s = kernel::run_end_scalar(&values, s);
            runs += 1;
        }
        std::hint::black_box(runs);
    });
    let simd_s = best_seconds(d, || {
        let mut s = 0;
        let mut runs = 0u64;
        while s < values.len() {
            s = kernel::run_end(&values, s);
            runs += 1;
        }
        std::hint::black_box(runs);
    });
    row(
        "cursor_run_boundaries",
        "scan",
        d.block as u64,
        aos_s,
        soa_s,
        simd_s,
    )
}

/// The aggregate fold's value read: a sum over one entry block.  No
/// dedicated kernel — the row prices the pure layout effect (the compiler
/// autovectorises both dense loops), so simd-vs-soa sits at ~1.0.
fn bench_aggregate_fold(d: Dims) -> Pr10Row {
    let (values, aos) = sorted_block(d.block);
    let aos_s = best_seconds(d, || {
        let mut sum = 0u64;
        for rec in &aos {
            sum = sum.wrapping_add(rec.value.raw());
        }
        std::hint::black_box(sum);
    });
    let dense = || {
        let mut sum = 0u64;
        for &v in &values {
            sum = sum.wrapping_add(v.raw());
        }
        std::hint::black_box(sum);
    };
    let soa_s = best_seconds(d, dense);
    let simd_s = best_seconds(d, dense);
    row(
        "aggregate_sum_fold",
        "aggregate",
        d.block as u64,
        aos_s,
        soa_s,
        simd_s,
    )
}

/// Runs the full PR 10 benchmark at the given scale.
pub fn run(scale: Pr10Scale) -> Pr10Report {
    let d = scale.dims();
    let rows = vec![
        bench_scan_sorted(d),
        bench_run_boundaries(d),
        bench_filter_masks(d),
        bench_tiny_filter(d),
        bench_probes(d),
        bench_aggregate_fold(d),
    ];
    let scan_filter: Vec<&Pr10Row> = rows
        .iter()
        .filter(|r| r.category == "scan" || r.category == "filter")
        .collect();
    let scan_filter_geomean = (scan_filter
        .iter()
        .map(|r| r.total_speedup.ln())
        .sum::<f64>()
        / scan_filter.len() as f64)
        .exp();
    Pr10Report {
        rows,
        scan_filter_geomean,
        simd_active: kernel::simd_active(),
    }
}

/// Serialises the report as JSON (line-oriented, like `BENCH_PR9.json`).
pub fn render_json(report: &Pr10Report) -> String {
    BenchJson::new("pr10-soa-simd-kernels")
        .array("rows", &report.rows, |r| {
            format!(
                "{{\"name\": \"{}\", \"category\": \"{}\", \"elems\": {}, \
                 \"aos_seconds\": {:.6}, \"soa_seconds\": {:.6}, \
                 \"simd_seconds\": {:.6}, \"soa_speedup\": {:.3}, \
                 \"simd_speedup\": {:.3}, \"total_speedup\": {:.3}}}",
                r.name,
                r.category,
                r.elems,
                r.aos_seconds,
                r.soa_seconds,
                r.simd_seconds,
                r.soa_speedup,
                r.simd_speedup,
                r.total_speedup,
            )
        })
        .field(
            "scan_filter_geomean",
            format!("{:.3}", report.scan_filter_geomean),
        )
        .field("simd_active", report.simd_active)
        .finish()
}

/// Renders the human-readable table printed by the `experiments` binary.
pub fn render_table(report: &Pr10Report) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<24} {:>9} {:>9} {:>11} {:>11} {:>11} {:>8} {:>8} {:>8}",
        "workload", "category", "elems", "aos (s)", "soa (s)", "simd (s)", "soa", "simd", "total"
    )
    .expect("string write");
    for r in &report.rows {
        writeln!(
            out,
            "{:<24} {:>9} {:>9} {:>11.6} {:>11.6} {:>11.6} {:>7.2}x {:>7.2}x {:>7.2}x",
            r.name,
            r.category,
            r.elems,
            r.aos_seconds,
            r.soa_seconds,
            r.simd_seconds,
            r.soa_speedup,
            r.simd_speedup,
            r.total_speedup,
        )
        .expect("string write");
    }
    writeln!(
        out,
        "\nscan/filter geomean (simd over aos): {:.2}x   simd paths active: {}",
        report.scan_filter_geomean, report.simd_active
    )
    .expect("string write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_runs_and_serialises() {
        let report = run(Pr10Scale::Smoke);
        assert_eq!(report.rows.len(), 6);
        let categories: Vec<&str> = report.rows.iter().map(|r| r.category.as_str()).collect();
        for want in ["scan", "filter", "probe", "aggregate"] {
            assert!(categories.contains(&want), "missing category {want}");
        }
        assert!(report.scan_filter_geomean.is_finite() && report.scan_filter_geomean > 0.0);
        // Without the feature the dispatched kernels are the scalar ones.
        if !cfg!(feature = "simd") {
            assert!(!report.simd_active);
        }
        let json = render_json(&report);
        assert!(json.contains("\"rows\""));
        assert!(json.contains("\"scan_filter_geomean\""));
        assert!(json.contains("\"simd_active\""));
        assert!(json.contains("\"host\""));
        assert!(!render_table(&report).is_empty());
    }

    #[test]
    fn aos_entry_reproduces_the_old_record_footprint() {
        assert_eq!(std::mem::size_of::<AosEntry>(), 16);
    }
}
