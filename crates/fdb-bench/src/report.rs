//! Plain-text table rendering of experiment results.
//!
//! The `experiments` binary prints these tables; `EXPERIMENTS.md` embeds
//! them next to the corresponding figures of the paper.

use crate::exp1::Exp1Row;
use crate::exp2::Exp2Row;
use crate::exp3::{Exp3Row, Measurement};
use crate::exp4::Exp4Row;
use crate::{POSTGRES_FACTOR, SQLITE_FACTOR};
use std::fmt::Write as _;
use std::time::Duration;

/// Line-oriented JSON builder shared by the per-PR bench reports
/// (`BENCH_PR1.json`..`BENCH_PR6.json` all have the same shape: a
/// `benchmark` name, arrays of one-line row objects, trailing scalar
/// summaries).  Each `render_json` keeps only its row formatting; the
/// brace/comma/indent plumbing lives here once.
pub struct BenchJson {
    out: String,
}

impl BenchJson {
    /// Starts a report: `{"benchmark": <name>, "host": {...}, ...`.
    ///
    /// Every report opens with a `host` object (CPU model, core count,
    /// `FDB_THREADS`, compiled feature flags) so that committed
    /// `BENCH_*.json` files are comparable across machines: a regression
    /// that is really a hardware or configuration difference is visible in
    /// the report itself instead of needing provenance archaeology.
    pub fn new(benchmark: &str) -> Self {
        let mut out = format!("{{\n  \"benchmark\": \"{benchmark}\"");
        let _ = write!(out, ",\n  \"host\": {}", host_json());
        BenchJson { out }
    }

    /// Appends an array field; `render_row` produces one row object
    /// (braces included, no indentation, no trailing comma).
    pub fn array<T>(mut self, key: &str, rows: &[T], render_row: impl Fn(&T) -> String) -> Self {
        let _ = write!(self.out, ",\n  \"{key}\": [\n");
        for (i, row) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(self.out, "    {}{}", render_row(row), comma);
        }
        self.out.push_str("  ]");
        self
    }

    /// Appends a scalar field; `value` is inserted verbatim (pre-format
    /// numbers with the precision the report wants).
    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        let _ = write!(self.out, ",\n  \"{key}\": {value}");
        self
    }

    /// Closes the report.
    pub fn finish(mut self) -> String {
        self.out.push_str("\n}\n");
        self.out
    }
}

/// CPU model name from `/proc/cpuinfo`, or `"unknown"` anywhere the file is
/// missing or shaped differently.
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// The `host` metadata object embedded in every report (see
/// [`BenchJson::new`]): CPU model, logical core count, the `FDB_THREADS`
/// override if set, and the cargo features that change measured code paths.
fn host_json() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let fdb_threads = match std::env::var("FDB_THREADS") {
        Ok(v) => format!("\"{}\"", v.escape_default()),
        Err(_) => "null".into(),
    };
    let mut features: Vec<&str> = Vec::new();
    if cfg!(feature = "simd") {
        features.push("\"simd\"");
    }
    format!(
        "{{\"cpu\": \"{}\", \"cores\": {}, \"fdb_threads\": {}, \"features\": [{}]}}",
        cpu_model().escape_default(),
        cores,
        fdb_threads,
        features.join(", ")
    )
}

/// Writes a benchmark's JSON report (or reports the smoke-scale skip) — the
/// shared tail of every `bench-prN` subcommand.
pub fn write_bench_file(path: &str, json: &str, smoke: bool) {
    if smoke {
        println!("\n(smoke scale: no file written)");
    } else {
        std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\nwrote {path}");
    }
}

fn fmt_duration(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2} s", d.as_secs_f64())
    } else if d.as_secs_f64() >= 1e-3 {
        format!("{:.2} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1} µs", d.as_secs_f64() * 1e6)
    }
}

fn fmt_measurement(m: &Measurement) -> (String, String) {
    match m {
        Measurement::Finished { time, size, .. } => (size.to_string(), fmt_duration(*time)),
        Measurement::TimedOut => ("—".into(), "timeout".into()),
    }
}

/// Renders the Experiment 1 table (Figure 5).
pub fn render_exp1(rows: &[Exp1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Experiment 1 — query optimisation on flat data (Figure 5)"
    );
    let _ = writeln!(
        out,
        "{:>3} {:>3} {:>14} {:>10}",
        "R", "K", "opt time", "s(T)"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>3} {:>3} {:>14} {:>10.2}",
            row.relations,
            row.equalities,
            fmt_duration(row.optimisation_time),
            row.cost
        );
    }
    out
}

/// Renders the Experiment 2 tables (Figures 6 and 9).
pub fn render_exp2(rows: &[Exp2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Experiment 2 — query optimisation on factorised data (Figures 6 and 9)"
    );
    let _ = writeln!(
        out,
        "{:>3} {:>3} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "K",
        "L",
        "full s(f)",
        "full s(T)",
        "greedy s(f)",
        "greedy s(T)",
        "full time",
        "greedy time"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>3} {:>3} {:>10.2} {:>10.2} {:>12.2} {:>12.2} {:>12} {:>12}",
            row.input_equalities,
            row.query_equalities,
            row.full_plan_cost,
            row.full_result_cost,
            row.greedy_plan_cost,
            row.greedy_result_cost,
            fmt_duration(row.full_time),
            fmt_duration(row.greedy_time),
        );
    }
    out
}

/// Renders the Experiment 3 table (Figure 7).
///
/// The SQLite- and PostgreSQL-like columns are *simulated*: the paper reports
/// SQLite ≈ 3× slower than RDB and PostgreSQL ≈ 3× slower than SQLite with
/// the same result sizes, so their times are derived from the RDB
/// measurement by those constant factors.
pub fn render_exp3(rows: &[Exp3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Experiment 3 — query evaluation on flat data (Figure 7)"
    );
    let _ = writeln!(
        out,
        "{:>16} {:>7} {:>3} {:>14} {:>16} {:>12} {:>12} {:>14} {:>14}",
        "workload",
        "N",
        "K",
        "FDB singles",
        "RDB elements",
        "FDB time",
        "RDB time",
        "~SQLite time",
        "~PostgreSQL"
    );
    for row in rows {
        let (fdb_size, fdb_time) = fmt_measurement(&row.fdb);
        let (rdb_size, rdb_time) = fmt_measurement(&row.rdb);
        let (sqlite_time, postgres_time) = match &row.rdb {
            Measurement::Finished { time, .. } => (
                fmt_duration(time.mul_f64(SQLITE_FACTOR)),
                fmt_duration(time.mul_f64(SQLITE_FACTOR * POSTGRES_FACTOR)),
            ),
            Measurement::TimedOut => ("timeout".into(), "timeout".into()),
        };
        let _ = writeln!(
            out,
            "{:>16} {:>7} {:>3} {:>14} {:>16} {:>12} {:>12} {:>14} {:>14}",
            row.workload,
            row.n,
            row.equalities,
            fdb_size,
            rdb_size,
            fdb_time,
            rdb_time,
            sqlite_time,
            postgres_time,
        );
    }
    out
}

/// Renders the Experiment 4 table (Figure 8).
pub fn render_exp4(rows: &[Exp4Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Experiment 4 — query evaluation on factorised data (Figure 8)"
    );
    let _ = writeln!(
        out,
        "{:>3} {:>3} {:>14} {:>16} {:>14} {:>16} {:>12} {:>12}",
        "K",
        "L",
        "input singles",
        "input elements",
        "FDB singles",
        "RDB elements",
        "FDB time",
        "RDB time"
    );
    for row in rows {
        let (fdb_size, fdb_time) = fmt_measurement(&row.fdb);
        let (rdb_size, rdb_time) = fmt_measurement(&row.rdb);
        let _ = writeln!(
            out,
            "{:>3} {:>3} {:>14} {:>16} {:>14} {:>16} {:>12} {:>12}",
            row.input_equalities,
            row.query_equalities,
            row.input_singletons,
            if row.input_data_elements == 0 {
                "—".into()
            } else {
                row.input_data_elements.to_string()
            },
            fdb_size,
            rdb_size,
            fdb_time,
            rdb_time,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_open_with_host_metadata() {
        let json = BenchJson::new("bench-test")
            .field("elapsed_ms", 12)
            .finish();
        assert!(json.starts_with("{\n  \"benchmark\": \"bench-test\""));
        assert!(json.contains("\"host\": {\"cpu\": \""));
        assert!(json.contains("\"cores\": "));
        assert!(json.contains("\"fdb_threads\": "));
        assert!(json.contains("\"features\": ["));
    }

    #[test]
    fn duration_formatting_picks_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0 µs");
    }

    #[test]
    fn tables_contain_headers_and_rows() {
        let rows = vec![Exp1Row {
            relations: 3,
            equalities: 2,
            optimisation_time: Duration::from_millis(1),
            cost: 1.5,
            repetitions: 5,
        }];
        let table = render_exp1(&rows);
        assert!(table.contains("s(T)"));
        assert!(table.contains("1.50"));
    }

    #[test]
    fn timeouts_are_rendered_as_dashes() {
        let rows = vec![Exp3Row {
            workload: "uniform".into(),
            n: 1000,
            equalities: 2,
            fdb: Measurement::Finished {
                time: Duration::from_millis(3),
                size: 42,
                tuples: 10,
            },
            rdb: Measurement::TimedOut,
        }];
        let table = render_exp3(&rows);
        assert!(table.contains("timeout"));
        assert!(table.contains("42"));
    }
}
