//! PR 5 benchmark: whole-plan fusion vs the PR 3 segmented baseline.
//!
//! PR 3 fused runs of *structural* operators but kept selections and
//! projections as segment barriers, so a plan with b interior barriers still
//! paid at least 2b+1 arena passes.  PR 5 folds both barrier classes into
//! the overlay executor and compiles the **whole plan** into one program
//! with a single arena emission; aggregate sinks additionally fold trailing
//! selections into the accumulation and emit no arena at all.  This
//! benchmark times the difference on selection-heavy and select-then-
//! aggregate workloads:
//!
//! * **fused** — [`FPlan::execute`] / [`FPlan::execute_aggregate`]: the
//!   whole plan as one overlay program;
//! * **segmented** — [`FPlan::execute_segmented`] (+ the arena aggregate
//!   pass): the PR 3 path, one arena pass per barrier and per structural
//!   segment.
//!
//! Every plan row carries at least one *interior* barrier (a selection or
//! projection with structural steps on both sides), the shape the PR 3
//! executor could not fuse across.  All sides are checked bit-for-bit (or
//! value-equal, for aggregates) before timing.  The `experiments bench-pr5`
//! subcommand prints the tables and serialises the rows as
//! `BENCH_PR5.json`; `--scale smoke` shrinks the inputs so CI can keep the
//! harness from bit-rotting.

use crate::report::BenchJson;
use fdb_common::{AttrId, ComparisonOp, Value};
use fdb_core::FdbEngine;
use fdb_datagen::{
    populate, random_followup_equalities, random_query, random_schema, ValueDistribution,
};
use fdb_frep::{aggregate, ops, AggregateKind, Entry, FRep, Union};
use fdb_ftree::{DepEdge, FTree, NodeId};
use fdb_plan::{ExhaustiveOptimizer, FPlan, FPlanOp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

/// One fused-vs-segmented plan measurement.
#[derive(Clone, Debug)]
pub struct PlanRow {
    /// Workload name (stable across refactors).
    pub name: String,
    /// Singleton count of the input representation.
    pub singletons: u64,
    /// Number of operators in the executed plan.
    pub plan_ops: u32,
    /// Number of former barriers (selections/projections) in the plan.
    pub barriers: u32,
    /// Timed repetitions per measurement.
    pub reps: u32,
    /// Best wall time of one whole-plan fused execution.
    pub fused_seconds: f64,
    /// Best wall time of one PR 3 segmented execution.
    pub segmented_seconds: f64,
    /// `segmented_seconds / fused_seconds`.
    pub speedup: f64,
}

/// One select-then-aggregate measurement: the overlay sink (no arena at
/// all) vs segmented execution followed by the arena aggregate pass.
#[derive(Clone, Debug)]
pub struct AggRow {
    /// Workload name.
    pub name: String,
    /// Singleton count of the input representation.
    pub singletons: u64,
    /// Number of operators in the plan ahead of the aggregate.
    pub plan_ops: u32,
    /// Timed repetitions per measurement.
    pub reps: u32,
    /// Best wall time of the fused aggregate sink.
    pub fused_seconds: f64,
    /// Best wall time of segmented execute-then-aggregate.
    pub segmented_seconds: f64,
    /// `segmented_seconds / fused_seconds`.
    pub speedup: f64,
}

/// The full PR 5 benchmark result.
#[derive(Clone, Debug)]
pub struct Pr5Report {
    /// Whole-plan execution rows (each plan has ≥ 1 interior barrier).
    pub plans: Vec<PlanRow>,
    /// Select-then-aggregate rows.
    pub aggregates: Vec<AggRow>,
    /// Geometric mean of the plan speedups.
    pub plan_speedup_geomean: f64,
    /// Geometric mean of the aggregate speedups.
    pub aggregate_speedup_geomean: f64,
}

/// Benchmark scale: `smoke` keeps CI runs to a couple of seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pr5Scale {
    /// Tiny inputs, few repetitions — a bit-rot canary, not a measurement.
    Smoke,
    /// The committed `BENCH_PR5.json` numbers.
    Full,
}

/// Workload size knobs.
#[derive(Clone, Copy)]
struct Dims {
    /// Entries of the outermost union of each synthetic chain.
    outer: u64,
    /// Entries per nested union.
    inner: u64,
    /// Independent chains in the wide-forest workloads.
    chains: u32,
    /// Rows per relation of the optimiser workload.
    rows: usize,
    /// Timed measurements (best one reported).
    measurements: usize,
    /// Plan executions per measurement.
    reps: u32,
}

impl Pr5Scale {
    fn dims(self) -> Dims {
        match self {
            Pr5Scale::Smoke => Dims {
                outer: 30,
                inner: 6,
                chains: 4,
                rows: 120,
                measurements: 2,
                reps: 2,
            },
            Pr5Scale::Full => Dims {
                outer: 300,
                inner: 30,
                chains: 6,
                rows: 1_500,
                measurements: 5,
                reps: 6,
            },
        }
    }
}

fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
    ids.iter().map(|&i| AttrId(i)).collect()
}

fn leaf_union(node: NodeId, values: impl Iterator<Item = u64>) -> Union {
    Union::new(node, values.map(|v| Entry::leaf(Value::new(v))).collect())
}

fn select(attr: AttrId, op: ComparisonOp, value: u64) -> FPlanOp {
    FPlanOp::SelectConst {
        attr,
        op,
        value: Value::new(value),
    }
}

/// The product of `chains` independent two-level chains (the PR 3 wide
/// forest): root attribute `2i`, child attribute `2i+1` for chain `i`.
fn wide_forest(d: Dims) -> FRep {
    let mut rep: Option<FRep> = None;
    for chain in 0..d.chains {
        let (ra, rb) = (chain * 2, chain * 2 + 1);
        let edges = vec![DepEdge::new(format!("R{chain}"), attrs(&[ra, rb]), d.outer)];
        let mut tree = FTree::new(edges);
        let root = tree.add_node(attrs(&[ra]), None).unwrap();
        let child = tree.add_node(attrs(&[rb]), Some(root)).unwrap();
        let entries = (0..d.outer)
            .map(|v| Entry {
                value: Value::new(v),
                children: vec![leaf_union(child, v..v + d.inner)],
            })
            .collect();
        let side = FRep::from_parts(tree, vec![Union::new(root, entries)]).unwrap();
        rep = Some(match rep {
            None => side,
            Some(acc) => ops::product(acc, side).unwrap(),
        });
    }
    rep.expect("at least one chain")
}

/// A{0} → B{1} → (C{2}, D{3}) with C dependent on A and D independent — the
/// PR 3 regrouping shape.
fn swap_shape(d: Dims) -> (FRep, NodeId, NodeId) {
    let edges = vec![
        DepEdge::new("RAB", attrs(&[0, 1]), d.outer),
        DepEdge::new("RAC", attrs(&[0, 2]), d.outer),
        DepEdge::new("RBD", attrs(&[1, 3]), d.inner),
    ];
    let mut tree = FTree::new(edges);
    let a = tree.add_node(attrs(&[0]), None).unwrap();
    let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
    let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
    let d_node = tree.add_node(attrs(&[3]), Some(b)).unwrap();
    let a_entries = (0..d.outer)
        .map(|av| Entry {
            value: Value::new(av),
            children: vec![Union::new(
                b,
                (av..av + d.inner)
                    .map(|bv| Entry {
                        value: Value::new(bv),
                        children: vec![
                            leaf_union(c, std::iter::once(av * 1_000)),
                            leaf_union(d_node, std::iter::once(bv)),
                        ],
                    })
                    .collect(),
            )],
        })
        .collect();
    let rep = FRep::from_parts(tree, vec![Union::new(a, a_entries)]).unwrap();
    (rep, a, b)
}

/// Swap, interior selection on the (then-root) B attribute, swap back,
/// normalise: the selection sits between two regroupings the PR 3 executor
/// had to split around.
fn swap_select_swap(d: Dims) -> (FRep, FPlan) {
    let (rep, a, b) = swap_shape(d);
    let plan = FPlan::new(vec![
        FPlanOp::Swap(b),
        select(AttrId(1), ComparisonOp::Ge, d.outer / 3),
        FPlanOp::Swap(a),
        FPlanOp::Normalise,
    ]);
    (rep, plan)
}

/// Alternating swaps and root-attribute selections across the wide forest:
/// five operators, two interior barriers, each pass of the segmented path
/// re-copying the whole forest.
fn selection_ladder(d: Dims) -> (FRep, FPlan) {
    let rep = wide_forest(d);
    let child_node = |rep: &FRep, chain: u32| {
        rep.tree()
            .node_of_attr(AttrId(chain * 2 + 1))
            .expect("chain child exists")
    };
    let plan = FPlan::new(vec![
        FPlanOp::Swap(child_node(&rep, 0)),
        select(AttrId(2), ComparisonOp::Ge, d.outer / 4),
        FPlanOp::Swap(child_node(&rep, 1)),
        select(AttrId(4), ComparisonOp::Ne, d.outer / 2),
        FPlanOp::Swap(child_node(&rep, 2)),
    ]);
    (rep, plan)
}

/// A projection between two swaps: the leaf removal used to be its own
/// barrier pass, now it is header remaps inside the single program.
fn project_mid_plan(d: Dims) -> (FRep, FPlan) {
    let rep = wide_forest(d);
    let all: BTreeSet<AttrId> = rep.tree().all_attrs();
    let dropped = AttrId(d.chains * 2 - 1); // the last chain's leaf attribute
    let keep: BTreeSet<AttrId> = all.into_iter().filter(|&x| x != dropped).collect();
    let child0 = rep.tree().node_of_attr(AttrId(1)).unwrap();
    let child1 = rep.tree().node_of_attr(AttrId(3)).unwrap();
    let plan = FPlan::new(vec![
        FPlanOp::Swap(child0),
        FPlanOp::Project(keep),
        FPlanOp::Swap(child1),
        FPlanOp::Normalise,
    ]);
    (rep, plan)
}

/// A plan of nothing but barriers: three selections and a projection, each
/// of which was a separate arena pass on the segmented path.
fn barrier_ladder(d: Dims) -> (FRep, FPlan) {
    let (rep, _, _) = swap_shape(d);
    let keep = attrs(&[0, 1, 3]);
    let plan = FPlan::new(vec![
        select(AttrId(0), ComparisonOp::Ge, d.outer / 4),
        select(AttrId(3), ComparisonOp::Ne, d.outer / 2),
        FPlanOp::Project(keep),
        select(AttrId(1), ComparisonOp::Le, d.outer + d.inner),
    ]);
    (rep, plan)
}

/// An optimiser-produced structural plan with a constant selection spliced
/// into the middle — the shape `evaluate_factorised` produces for a query
/// with both equality conditions and constant selections.  Seeds are
/// scanned until the plan has enough structural steps.
fn optimiser_plan_with_selection(d: Dims, min_ops: usize) -> (FRep, FPlan) {
    let engine = FdbEngine::new();
    for seed in 0u64..10_000 {
        let mut rng = StdRng::seed_from_u64(0x5055_3A44 ^ seed);
        let catalog = random_schema(&mut rng, 4, 10);
        let rels: Vec<_> = catalog.rels().collect();
        let db = populate(&mut rng, &catalog, d.rows, 40, ValueDistribution::Uniform);
        let query = random_query(&mut rng, &catalog, &rels, 2);
        let Ok(base) = engine.evaluate_flat(&db, &query) else {
            continue;
        };
        // Arena passes only dominate once the representation is reasonably
        // large; small reps are fixed-cost noise either way.
        if base.result.size() < d.rows * 4 {
            continue;
        }
        let follow = random_followup_equalities(&mut rng, &catalog, &query, 2);
        if follow.len() < 2 {
            continue;
        }
        let Ok(optimised) = ExhaustiveOptimizer::new().optimize(base.result.tree(), &follow) else {
            continue;
        };
        if optimised.plan.len() < min_ops {
            continue;
        }
        // Splice a selective-but-not-emptying selection into the middle.
        let attr = *base
            .result
            .visible_attrs()
            .first()
            .expect("non-empty representation has attributes");
        let mut ops_list = optimised.plan.ops.clone();
        ops_list.insert(ops_list.len() / 2, select(attr, ComparisonOp::Ge, 2));
        let plan = FPlan::new(ops_list);
        let mut probe = base.result.clone();
        if plan.execute_stepwise(&mut probe).is_err() {
            continue;
        }
        return (base.result, plan);
    }
    panic!("no seed produced an optimiser plan with ≥ {min_ops} ops");
}

/// Times `run` on fresh clones of `input`, best of `measurements` runs of
/// `reps` executions; returns seconds per execution.
fn time_plan<F: FnMut(&mut FRep)>(input: &FRep, d: Dims, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..d.measurements {
        let mut total = 0.0f64;
        for _ in 0..d.reps {
            let mut rep = input.clone();
            let start = Instant::now();
            run(&mut rep);
            total += start.elapsed().as_secs_f64();
            std::hint::black_box(&rep);
        }
        best = best.min(total / d.reps as f64);
    }
    best
}

/// Measures one plan both ways, checking bit-for-bit identity (against the
/// step-wise oracle too) first.
fn measure_plan(name: &str, input: &FRep, plan: &FPlan, d: Dims) -> PlanRow {
    let mut fused = input.clone();
    let mut segmented = input.clone();
    let mut stepwise = input.clone();
    plan.execute(&mut fused).expect("fused execution succeeds");
    plan.execute_segmented(&mut segmented)
        .expect("segmented execution succeeds");
    plan.execute_stepwise(&mut stepwise)
        .expect("step-wise execution succeeds");
    assert!(
        fused.store_identical(&segmented) && fused.store_identical(&stepwise),
        "{name}: execution paths diverge"
    );

    let fused_seconds = time_plan(input, d, |rep| {
        plan.execute(rep).expect("fused execution succeeds");
    });
    let segmented_seconds = time_plan(input, d, |rep| {
        plan.execute_segmented(rep)
            .expect("segmented execution succeeds");
    });
    PlanRow {
        name: name.to_string(),
        singletons: input.size() as u64,
        plan_ops: plan.len() as u32,
        barriers: plan.barrier_count() as u32,
        reps: d.reps,
        fused_seconds,
        segmented_seconds,
        speedup: segmented_seconds / fused_seconds.max(1e-12),
    }
}

/// Measures one select-then-aggregate workload: the fused sink vs segmented
/// execution plus the arena aggregate pass.
fn measure_aggregate(
    name: &str,
    input: &FRep,
    plan: &FPlan,
    kind: AggregateKind,
    d: Dims,
) -> AggRow {
    // Correctness first: the sink must equal execute-then-aggregate.
    let (on_sink, _) = plan
        .execute_aggregate(input, kind, &[])
        .expect("aggregate sink runs");
    let mut executed = input.clone();
    plan.execute_segmented(&mut executed)
        .expect("segmented execution succeeds");
    let on_arena = aggregate::evaluate(&executed, kind, &[]).expect("arena aggregate runs");
    assert_eq!(on_sink, on_arena, "{name}: aggregate paths diverge");

    let mut best_fused = f64::INFINITY;
    let mut best_segmented = f64::INFINITY;
    for _ in 0..d.measurements {
        let mut fused_total = 0.0f64;
        let mut segmented_total = 0.0f64;
        for _ in 0..d.reps {
            let start = Instant::now();
            let out = plan
                .execute_aggregate(input, kind, &[])
                .expect("aggregate sink runs");
            fused_total += start.elapsed().as_secs_f64();
            std::hint::black_box(&out);

            let mut rep = input.clone();
            let start = Instant::now();
            plan.execute_segmented(&mut rep)
                .expect("segmented execution succeeds");
            let out = aggregate::evaluate(&rep, kind, &[]).expect("arena aggregate runs");
            segmented_total += start.elapsed().as_secs_f64();
            std::hint::black_box(&out);
        }
        best_fused = best_fused.min(fused_total / d.reps as f64);
        best_segmented = best_segmented.min(segmented_total / d.reps as f64);
    }
    AggRow {
        name: name.to_string(),
        singletons: input.size() as u64,
        plan_ops: plan.len() as u32,
        reps: d.reps,
        fused_seconds: best_fused,
        segmented_seconds: best_segmented,
        speedup: best_segmented / best_fused.max(1e-12),
    }
}

fn geomean(speedups: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = speedups.fold((0.0f64, 0usize), |(s, n), x| (s + x.ln(), n + 1));
    (sum / n.max(1) as f64).exp()
}

/// Runs the full PR 5 benchmark at the given scale.
pub fn run(scale: Pr5Scale) -> Pr5Report {
    let d = scale.dims();
    let mut plans = Vec::new();

    let (rep, plan) = swap_select_swap(d);
    plans.push(measure_plan("swap_select_swap", &rep, &plan, d));

    let (rep, plan) = selection_ladder(d);
    plans.push(measure_plan("selection_ladder_forest", &rep, &plan, d));

    let (rep, plan) = project_mid_plan(d);
    plans.push(measure_plan("project_mid_plan", &rep, &plan, d));

    let (rep, plan) = barrier_ladder(d);
    plans.push(measure_plan("barrier_only_ladder", &rep, &plan, d));

    let (rep, plan) = optimiser_plan_with_selection(d, 3);
    plans.push(measure_plan("optimiser_plan_with_select", &rep, &plan, d));

    let mut aggregates = Vec::new();
    let (rep, _, _) = swap_shape(d);
    let select_leaf = FPlan::new(vec![select(AttrId(3), ComparisonOp::Ge, d.inner / 2)]);
    aggregates.push(measure_aggregate(
        "select_then_count",
        &rep,
        &select_leaf,
        AggregateKind::Count,
        d,
    ));
    let select_twice = FPlan::new(vec![
        select(AttrId(0), ComparisonOp::Ge, d.outer / 4),
        select(AttrId(3), ComparisonOp::Ne, d.inner / 2),
    ]);
    aggregates.push(measure_aggregate(
        "select_select_sum",
        &rep,
        &select_twice,
        AggregateKind::Sum(AttrId(1)),
        d,
    ));
    let (rep2, _, b) = swap_shape(d);
    let restructure_select = FPlan::new(vec![
        FPlanOp::Swap(b),
        select(AttrId(1), ComparisonOp::Ge, d.outer / 3),
    ]);
    aggregates.push(measure_aggregate(
        "swap_select_count",
        &rep2,
        &restructure_select,
        AggregateKind::Count,
        d,
    ));

    let plan_speedup_geomean = geomean(plans.iter().map(|r| r.speedup));
    let aggregate_speedup_geomean = geomean(aggregates.iter().map(|r| r.speedup));
    Pr5Report {
        plans,
        aggregates,
        plan_speedup_geomean,
        aggregate_speedup_geomean,
    }
}

/// Serialises the report as JSON (line-oriented, like `BENCH_PR3.json`).
pub fn render_json(report: &Pr5Report) -> String {
    BenchJson::new("pr5-whole-plan-fusion")
        .array("plans", &report.plans, |row| {
            format!(
                "{{\"name\": \"{}\", \"singletons\": {}, \"plan_ops\": {}, \"barriers\": {}, \
                 \"reps\": {}, \"fused_seconds\": {:.6}, \"segmented_seconds\": {:.6}, \
                 \"speedup\": {:.3}}}",
                row.name,
                row.singletons,
                row.plan_ops,
                row.barriers,
                row.reps,
                row.fused_seconds,
                row.segmented_seconds,
                row.speedup,
            )
        })
        .array("aggregates", &report.aggregates, |row| {
            format!(
                "{{\"name\": \"{}\", \"singletons\": {}, \"plan_ops\": {}, \"reps\": {}, \
                 \"fused_seconds\": {:.6}, \"segmented_seconds\": {:.6}, \"speedup\": {:.3}}}",
                row.name,
                row.singletons,
                row.plan_ops,
                row.reps,
                row.fused_seconds,
                row.segmented_seconds,
                row.speedup,
            )
        })
        .field(
            "plan_speedup_geomean",
            format!("{:.3}", report.plan_speedup_geomean),
        )
        .field(
            "aggregate_speedup_geomean",
            format!("{:.3}", report.aggregate_speedup_geomean),
        )
        .finish()
}

/// Renders the human-readable tables printed by the `experiments` binary.
pub fn render_table(report: &Pr5Report) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<28} {:>12} {:>5} {:>9} {:>14} {:>14} {:>9}",
        "whole-plan fusion",
        "singletons",
        "ops",
        "barriers",
        "fused (s)",
        "segmented (s)",
        "speedup"
    )
    .expect("string write");
    for row in &report.plans {
        writeln!(
            out,
            "{:<28} {:>12} {:>5} {:>9} {:>14.6} {:>14.6} {:>8.2}x",
            row.name,
            row.singletons,
            row.plan_ops,
            row.barriers,
            row.fused_seconds,
            row.segmented_seconds,
            row.speedup
        )
        .expect("string write");
    }
    writeln!(
        out,
        "plan geometric-mean speedup: {:.2}x\n",
        report.plan_speedup_geomean
    )
    .expect("string write");
    writeln!(
        out,
        "{:<28} {:>12} {:>5} {:>14} {:>14} {:>9}",
        "select-then-aggregate", "singletons", "ops", "sink (s)", "segmented (s)", "speedup"
    )
    .expect("string write");
    for row in &report.aggregates {
        writeln!(
            out,
            "{:<28} {:>12} {:>5} {:>14.6} {:>14.6} {:>8.2}x",
            row.name,
            row.singletons,
            row.plan_ops,
            row.fused_seconds,
            row.segmented_seconds,
            row.speedup
        )
        .expect("string write");
    }
    writeln!(
        out,
        "aggregate geometric-mean speedup: {:.2}x",
        report.aggregate_speedup_geomean
    )
    .expect("string write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_runs_and_reports_consistent_rows() {
        let report = run(Pr5Scale::Smoke);
        assert_eq!(report.plans.len(), 5);
        assert_eq!(report.aggregates.len(), 3);
        assert!(report.plan_speedup_geomean > 0.0);
        assert!(report.aggregate_speedup_geomean > 0.0);
        for row in &report.plans {
            assert!(row.fused_seconds > 0.0 && row.segmented_seconds > 0.0);
            assert!(
                row.barriers >= 1,
                "{}: every plan row carries a barrier",
                row.name
            );
        }
        let json = render_json(&report);
        assert!(json.contains("\"plan_speedup_geomean\""));
        assert!(json.contains("selection_ladder_forest"));
        assert!(json.contains("select_then_count"));
        let table = render_table(&report);
        assert!(table.contains("plan geometric-mean speedup"));
        assert!(table.contains("aggregate geometric-mean speedup"));
    }
}
