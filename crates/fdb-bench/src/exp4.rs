//! Experiment 4 (Figure 8): query evaluation on factorised data.
//!
//! Inputs are the results of Experiment-3-style queries with `K` equality
//! selections over the combinatorial dataset (`R = 4`, `A = 10`): FDB keeps
//! them factorised, RDB keeps them as flat relations.  The new queries are
//! conjunctions of `L` further equality conditions on the attribute classes
//! of the input.  RDB evaluates them with a single scan over the flat
//! relation; FDB runs the f-plan chosen by the full-search optimiser, which
//! may need to restructure the factorisation first.  The paper reports up to
//! four orders of magnitude advantage for FDB in both result size and
//! evaluation time, closing only when the inputs shrink to about a thousand
//! tuples.

use crate::exp3::Measurement;
use crate::Scale;
use fdb_common::{AttrId, Query, RelId};
use fdb_core::{FactorisedQuery, FdbEngine};
use fdb_datagen::{
    combinatorial_database, random_followup_equalities, random_query, ValueDistribution,
};
use fdb_relation::{EvalLimits, LimitChecker, RdbEngine, Relation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// One measurement point of Experiment 4.
#[derive(Clone, Debug)]
pub struct Exp4Row {
    /// Number of equalities `K` in the query that produced the input.
    pub input_equalities: usize,
    /// Number of equalities `L` in the follow-up query.
    pub query_equalities: usize,
    /// Size of the factorised input (singletons).
    pub input_singletons: u64,
    /// Size of the flat input (data elements).
    pub input_data_elements: u64,
    /// FDB measurement (size = singletons of the result).
    pub fdb: Measurement,
    /// RDB measurement (size = data elements of the result).
    pub rdb: Measurement,
}

/// Configuration of the Experiment 4 sweep.
#[derive(Clone, Debug)]
pub struct Exp4Config {
    /// Values of `K` (input query equalities) to sweep.
    pub input_equalities: Vec<usize>,
    /// Values of `L` (follow-up query equalities) to sweep.
    pub query_equalities: Vec<usize>,
    /// Timeout and tuple budget for producing the flat input with RDB.
    pub timeout: Duration,
    /// Tuple budget for the flat input.
    pub max_flat_tuples: usize,
}

impl Exp4Config {
    /// Configuration appropriate for the given scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Exp4Config {
                input_equalities: (2..=6).collect(),
                query_equalities: (1..=3).collect(),
                timeout: Duration::from_secs(10),
                max_flat_tuples: 20_000_000,
            },
            Scale::Full => Exp4Config {
                input_equalities: (1..=8).collect(),
                query_equalities: (1..=5).collect(),
                timeout: Duration::from_secs(60),
                max_flat_tuples: 50_000_000,
            },
        }
    }
}

/// Evaluates a conjunction of equality selections on a flat relation with a
/// single scan (what RDB does for queries on materialised previous results).
fn rdb_select_scan(
    input: &Relation,
    conditions: &[(AttrId, AttrId)],
    limits: &EvalLimits,
) -> fdb_common::Result<Relation> {
    let checker = LimitChecker::new(limits);
    let cols: Vec<(usize, usize)> = conditions
        .iter()
        .filter_map(|(a, b)| Some((input.col_index(*a)?, input.col_index(*b)?)))
        .collect();
    let mut produced = 0usize;
    let mut out = Relation::new(input.attrs().to_vec());
    for row in input.rows() {
        if cols.iter().all(|&(ca, cb)| row[ca] == row[cb]) {
            out.push_row(row)?;
            produced += 1;
            if produced.is_multiple_of(4096) {
                checker.check(produced)?;
            }
        }
    }
    checker.check(produced)?;
    Ok(out)
}

/// Runs the Experiment 4 sweep.
pub fn run(scale: Scale) -> Vec<Exp4Row> {
    let config = Exp4Config::for_scale(scale);
    run_with_config(&config)
}

/// Runs the Experiment 4 sweep with an explicit configuration.
pub fn run_with_config(config: &Exp4Config) -> Vec<Exp4Row> {
    let mut rng = StdRng::seed_from_u64(0xFDB4);
    let db = combinatorial_database(&mut rng, ValueDistribution::Uniform);
    let catalog = db.catalog().clone();
    let rels: Vec<RelId> = catalog.rels().collect();
    let engine = FdbEngine::new();
    let mut rows = Vec::new();

    for &k in &config.input_equalities {
        let base_query: Query = random_query(&mut rng, &catalog, &rels, k);
        if base_query.equalities.len() < k {
            continue;
        }
        // The factorised input (FDB) and the flat input (RDB).
        let Ok(base_fdb) = engine.evaluate_flat(&db, &base_query) else {
            continue;
        };
        let rdb_engine = RdbEngine::new().with_limits(
            EvalLimits::unlimited()
                .with_timeout(config.timeout)
                .with_max_tuples(config.max_flat_tuples),
        );
        let flat_input = rdb_engine.evaluate(&db, &base_query).ok();

        for &l in &config.query_equalities {
            let follow = random_followup_equalities(&mut rng, &catalog, &base_query, l);
            if follow.len() < l {
                continue;
            }

            // FDB: optimise and run the f-plan on the factorised input.
            let fdb = {
                let start = Instant::now();
                match engine.evaluate_factorised(
                    &base_fdb.result,
                    &FactorisedQuery::equalities(follow.clone()),
                ) {
                    Ok(out) => Measurement::Finished {
                        time: start.elapsed(),
                        size: out.stats.result_size as u64,
                        tuples: out.stats.result_tuples,
                    },
                    Err(_) => Measurement::TimedOut,
                }
            };

            // RDB: a single selection scan over the flat input.
            let rdb = match &flat_input {
                Some(input) => {
                    let limits = EvalLimits::unlimited()
                        .with_timeout(config.timeout)
                        .with_max_tuples(config.max_flat_tuples);
                    let start = Instant::now();
                    match rdb_select_scan(input, &follow, &limits) {
                        Ok(result) => Measurement::Finished {
                            time: start.elapsed(),
                            size: result.data_element_count() as u64,
                            tuples: result.len() as u128,
                        },
                        Err(_) => Measurement::TimedOut,
                    }
                }
                None => Measurement::TimedOut,
            };

            rows.push(Exp4Row {
                input_equalities: k,
                query_equalities: l,
                input_singletons: base_fdb.stats.result_size as u64,
                input_data_elements: flat_input
                    .as_ref()
                    .map(|r| r.data_element_count() as u64)
                    .unwrap_or(0),
                fdb,
                rdb,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdb_and_rdb_agree_on_result_tuples() {
        let config = Exp4Config {
            input_equalities: vec![4, 5],
            query_equalities: vec![1, 2],
            timeout: Duration::from_secs(30),
            max_flat_tuples: 10_000_000,
        };
        let rows = run_with_config(&config);
        assert!(!rows.is_empty());
        for row in &rows {
            if let (
                Measurement::Finished {
                    tuples: ft,
                    size: fsize,
                    ..
                },
                Measurement::Finished {
                    tuples: rt,
                    size: rsize,
                    ..
                },
            ) = (&row.fdb, &row.rdb)
            {
                assert_eq!(
                    ft, rt,
                    "K={} L={}",
                    row.input_equalities, row.query_equalities
                );
                assert!(
                    fsize <= rsize,
                    "factorised result must not exceed the flat one"
                );
            }
        }
    }
}
