//! PR 6 serving benchmark: queries/second under a Zipf-skewed query mix.
//!
//! The serving layer (`fdb_core::serving`) executes independent requests
//! concurrently over `Arc`-shared frozen arenas, with a plan cache keyed on
//! query shape.  This benchmark measures three things:
//!
//! * **serving** — queries/second at 1, 2 and 4 worker threads for a
//!   Zipf-skewed mix of query templates (few hot shapes, a long tail),
//!   where every request carries a fixed *client stall* (simulated network
//!   and protocol latency) ahead of its evaluation.  The stall is where a
//!   single-CPU host still wins from concurrency: while one request sleeps
//!   in its stall, the worker pool runs another one's evaluation.  The
//!   stall length is reported in every row so the numbers cannot be
//!   mistaken for pure-CPU speedups;
//! * **cpu** — the same batch through [`FdbServer::serve_batch`] with *no*
//!   stall: pure-CPU queries/second.  On a single-CPU host these rows stay
//!   flat (≈ 1×) across thread counts — reported honestly rather than
//!   hidden;
//! * **enumeration** — [`fdb_frep::par_materialize`] against the
//!   sequential [`fdb_frep::materialize`] on large representations, after
//!   asserting the parallel result is identical (the sequential-merge
//!   contract).
//!
//! Every workload is checked for correctness (served outcomes against the
//! plain uncached engine) before any timing starts.  The `experiments`
//! binary serialises the report as `BENCH_PR6.json`.

use crate::report::BenchJson;
use fdb_common::{AggregateFunc, AggregateHead, AttrId, ComparisonOp, ConstSelection, Value};
use fdb_core::{
    FactorisedQuery, FdbEngine, FdbServer, PlanCache, RepId, ServeRequest, SharedDatabase,
    ThreadPool,
};
use fdb_frep::{materialize, par_materialize, Entry, FRep, Union};
use fdb_ftree::{DepEdge, FTree, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One serving measurement (with the per-request client stall).
#[derive(Clone, Debug)]
pub struct ServeRow {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Requests per timed pass.
    pub requests: u64,
    /// Simulated client stall per request, in microseconds.
    pub stall_micros: u64,
    /// Best wall time of one pass over the batch.
    pub seconds: f64,
    /// Queries per second of the best pass.
    pub qps: f64,
    /// `qps / qps(1 thread)`.
    pub speedup_vs_one_thread: f64,
    /// Plan-cache hits across the whole run at this thread count.
    pub cache_hits: u64,
    /// Plan-cache misses across the whole run at this thread count.
    pub cache_misses: u64,
}

/// One pure-CPU serving measurement (no stall, through `serve_batch`).
#[derive(Clone, Debug)]
pub struct CpuRow {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Requests per timed pass.
    pub requests: u64,
    /// Best wall time of one pass over the batch.
    pub seconds: f64,
    /// Queries per second of the best pass.
    pub qps: f64,
}

/// One parallel-enumeration measurement.
#[derive(Clone, Debug)]
pub struct EnumRow {
    /// Workload name.
    pub name: String,
    /// Tuples enumerated.
    pub tuples: u64,
    /// Worker threads in the pool.
    pub threads: usize,
    /// Best wall time of the sequential `materialize`.
    pub sequential_seconds: f64,
    /// Best wall time of `par_materialize` on the pool.
    pub parallel_seconds: f64,
    /// `sequential_seconds / parallel_seconds`.
    pub speedup: f64,
}

/// The full PR 6 benchmark result.
#[derive(Clone, Debug)]
pub struct Pr6Report {
    /// Stall-model serving rows, one per thread count.
    pub serving: Vec<ServeRow>,
    /// Pure-CPU serving rows, one per thread count.
    pub cpu: Vec<CpuRow>,
    /// Parallel-enumeration rows.
    pub enumeration: Vec<EnumRow>,
    /// Serving qps at 4 threads over qps at 1 thread.
    pub qps_speedup_at_4_threads: f64,
}

/// Benchmark scale: `smoke` keeps CI runs to a couple of seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pr6Scale {
    /// Tiny inputs, few repetitions — a bit-rot canary, not a measurement.
    Smoke,
    /// The committed `BENCH_PR6.json` numbers.
    Full,
}

/// Workload size knobs.
#[derive(Clone, Copy)]
struct Dims {
    /// Entries of the outermost union of each serving chain.
    outer: u64,
    /// Entries per nested union of the serving representations.
    inner: u64,
    /// Independent chains in the wide-forest serving representation.
    chains: u32,
    /// Requests per timed pass.
    requests: usize,
    /// Simulated client stall per request.
    stall: Duration,
    /// Timed passes per thread count (best one reported).
    measurements: usize,
    /// Outer entries of the deep-chain enumeration workload.
    enum_outer: u64,
    /// Inner entries of the deep-chain enumeration workload.
    enum_inner: u64,
}

impl Pr6Scale {
    fn dims(self) -> Dims {
        match self {
            Pr6Scale::Smoke => Dims {
                outer: 30,
                inner: 6,
                chains: 3,
                requests: 24,
                stall: Duration::from_micros(200),
                measurements: 1,
                enum_outer: 120,
                enum_inner: 40,
            },
            Pr6Scale::Full => Dims {
                outer: 120,
                inner: 12,
                chains: 3,
                requests: 400,
                stall: Duration::from_micros(1_500),
                measurements: 3,
                enum_outer: 3_000,
                enum_inner: 300,
            },
        }
    }
}

/// Thread counts measured by both serving sections.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Zipf exponent of the template mix (1.1: a clearly skewed head).
const ZIPF_EXPONENT: f64 = 1.1;

fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
    ids.iter().map(|&i| AttrId(i)).collect()
}

fn leaf_union(node: NodeId, values: impl Iterator<Item = u64>) -> Union {
    Union::new(node, values.map(|v| Entry::leaf(Value::new(v))).collect())
}

fn select(attr: u32, op: ComparisonOp, value: u64) -> ConstSelection {
    ConstSelection {
        attr: AttrId(attr),
        op,
        value: Value::new(value),
    }
}

/// The product of `chains` independent two-level chains: root attribute
/// `2i`, child attribute `2i+1` for chain `i` (the PR 3/5 wide forest).
fn wide_forest(chains: u32, outer: u64, inner: u64) -> FRep {
    let mut rep: Option<FRep> = None;
    for chain in 0..chains {
        let (ra, rb) = (chain * 2, chain * 2 + 1);
        let edges = vec![DepEdge::new(format!("R{chain}"), attrs(&[ra, rb]), outer)];
        let mut tree = FTree::new(edges);
        let root = tree.add_node(attrs(&[ra]), None).unwrap();
        let child = tree.add_node(attrs(&[rb]), Some(root)).unwrap();
        let entries = (0..outer)
            .map(|v| Entry {
                value: Value::new(v),
                children: vec![leaf_union(child, v..v + inner)],
            })
            .collect();
        let side = FRep::from_parts(tree, vec![Union::new(root, entries)]).unwrap();
        rep = Some(match rep {
            None => side,
            Some(acc) => fdb_frep::ops::product(acc, side).unwrap(),
        });
    }
    rep.expect("at least one chain")
}

/// A{0} → B{1} → (C{2}, D{3}): the nested regrouping shape of PR 3/5.
fn nested_shape(d: Dims) -> FRep {
    let edges = vec![
        DepEdge::new("RAB", attrs(&[0, 1]), d.outer),
        DepEdge::new("RAC", attrs(&[0, 2]), d.outer),
        DepEdge::new("RBD", attrs(&[1, 3]), d.inner),
    ];
    let mut tree = FTree::new(edges);
    let a = tree.add_node(attrs(&[0]), None).unwrap();
    let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
    let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
    let d_node = tree.add_node(attrs(&[3]), Some(b)).unwrap();
    let a_entries = (0..d.outer)
        .map(|av| Entry {
            value: Value::new(av),
            children: vec![Union::new(
                b,
                (av..av + d.inner)
                    .map(|bv| Entry {
                        value: Value::new(bv),
                        children: vec![
                            leaf_union(c, std::iter::once(av % 7)),
                            leaf_union(d_node, std::iter::once(bv % 11)),
                        ],
                    })
                    .collect(),
            )],
        })
        .collect();
    FRep::from_parts(tree, vec![Union::new(a, a_entries)]).unwrap()
}

/// Number of query templates in the mix.
const TEMPLATES: usize = 10;

/// Instantiates query template `template` with constant `c` against the two
/// registered representations.  Templates 0–5 hit the forest, 6–9 the
/// nested shape; the constants vary per request while the *shape* (and so
/// the plan-cache key) stays fixed per template.
fn template_request(template: usize, c: u64, forest: RepId, nested: RepId) -> ServeRequest {
    let q = FactorisedQuery::default;
    let (rep, query, aggregate) = match template {
        0 => (
            forest,
            q().with_const_selection(select(0, ComparisonOp::Ge, c)),
            None,
        ),
        1 => (
            forest,
            q().with_const_selection(select(1, ComparisonOp::Eq, c)),
            None,
        ),
        2 => (
            forest,
            q().with_const_selection(select(0, ComparisonOp::Ge, c))
                .with_projection(vec![AttrId(0), AttrId(1), AttrId(2), AttrId(3)]),
            None,
        ),
        3 => (
            forest,
            q().with_const_selection(select(4, ComparisonOp::Ne, c)),
            Some(AggregateHead::count()),
        ),
        4 => (
            forest,
            FactorisedQuery::equalities(vec![(AttrId(0), AttrId(2))]),
            None,
        ),
        5 => (
            forest,
            q().with_const_selection(select(2, ComparisonOp::Ge, c))
                .with_const_selection(select(0, ComparisonOp::Le, c)),
            None,
        ),
        6 => (
            nested,
            q().with_const_selection(select(1, ComparisonOp::Ge, c)),
            None,
        ),
        7 => (
            nested,
            q().with_const_selection(select(3, ComparisonOp::Le, c % 11))
                .with_projection(vec![AttrId(0), AttrId(1), AttrId(3)]),
            None,
        ),
        8 => (
            nested,
            q().with_const_selection(select(1, ComparisonOp::Ge, c)),
            Some(AggregateHead::count()),
        ),
        9 => (
            nested,
            q().with_const_selection(select(0, ComparisonOp::Ge, c)),
            Some(AggregateHead::over(AggregateFunc::Sum, AttrId(3))),
        ),
        _ => unreachable!("template index out of range"),
    };
    ServeRequest::new(rep, query, aggregate)
}

/// Draws the Zipf-skewed request batch: template ranks from `Zipf(10, 1.1)`
/// (template 0 is the hottest shape), constants uniform per request.
fn zipf_batch(d: Dims, forest: RepId, nested: RepId, rng: &mut StdRng) -> Vec<ServeRequest> {
    let zipf = Zipf::new(TEMPLATES as u64, ZIPF_EXPONENT).expect("valid Zipf parameters");
    (0..d.requests)
        .map(|_| {
            let template = zipf.sample(rng) as usize - 1;
            let c = rng.gen_range(0..d.outer);
            template_request(template, c, forest, nested)
        })
        .collect()
}

/// Checks every served outcome against the plain uncached engine before any
/// timing: representations must be store-identical, aggregates value-equal.
fn check_batch(engine: &FdbEngine, db: &SharedDatabase, requests: &[ServeRequest]) {
    let cache = PlanCache::new();
    for request in requests {
        let rep = db.get(request.rep).expect("registered representation");
        match &request.aggregate {
            Some(head) => {
                let cached = engine
                    .evaluate_factorised_aggregate_cached(&rep, &request.query, head, &cache)
                    .expect("aggregate request serves");
                let plain = engine
                    .evaluate_factorised_aggregate(&rep, &request.query, head)
                    .expect("aggregate request evaluates");
                assert_eq!(cached.result, plain.result, "cached aggregate diverged");
            }
            None => {
                let cached = engine
                    .evaluate_factorised_cached(&rep, &request.query, &cache)
                    .expect("request serves");
                let plain = engine
                    .evaluate_factorised(&rep, &request.query)
                    .expect("request evaluates");
                assert!(
                    cached.result.store_identical(&plain.result),
                    "cached result diverged from the uncached pipeline"
                );
            }
        }
    }
}

/// One pass of the stall-model serving loop: every request sleeps `stall`
/// (the simulated client latency) on a pool worker, then runs the cached
/// fused pipeline against the shared arenas.  Returns the wall time.
fn serve_pass_with_stall(
    engine: FdbEngine,
    db: &Arc<SharedDatabase>,
    cache: &Arc<PlanCache>,
    pool: &ThreadPool,
    requests: &[ServeRequest],
    stall: Duration,
) -> Duration {
    let (tx, rx) = mpsc::channel::<bool>();
    let start = Instant::now();
    for request in requests.iter().cloned() {
        let db = Arc::clone(db);
        let cache = Arc::clone(cache);
        let tx = tx.clone();
        pool.spawn(move || {
            std::thread::sleep(stall);
            let rep = db.get(request.rep).expect("registered representation");
            let ok = match &request.aggregate {
                Some(head) => engine
                    .evaluate_factorised_aggregate_cached(&rep, &request.query, head, &cache)
                    .is_ok(),
                None => engine
                    .evaluate_factorised_cached(&rep, &request.query, &cache)
                    .is_ok(),
            };
            let _ = tx.send(ok);
        });
    }
    drop(tx);
    let mut served = 0usize;
    for ok in rx {
        assert!(ok, "a serving request failed mid-benchmark");
        served += 1;
    }
    let elapsed = start.elapsed();
    assert_eq!(served, requests.len(), "a serving worker dropped a request");
    elapsed
}

/// Runs the benchmark at the given scale.
pub fn run(scale: Pr6Scale) -> Pr6Report {
    let d = scale.dims();
    let engine = FdbEngine::new();
    let mut shared = SharedDatabase::new();
    let forest = shared
        .insert("forest", wide_forest(d.chains, d.outer, d.inner))
        .expect("fresh database, unique name");
    let nested = shared
        .insert("nested", nested_shape(d))
        .expect("fresh database, unique name");
    let db = Arc::new(shared);

    let mut rng = StdRng::seed_from_u64(0x0005_eed6 * 31);
    let requests = zipf_batch(d, forest, nested, &mut rng);
    check_batch(&engine, &db, &requests);

    // Stall-model serving: fresh pool and plan cache per thread count so the
    // hit/miss counters and the warm-cache passes are comparable across rows.
    let mut serving = Vec::new();
    for &threads in &THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let cache = Arc::new(PlanCache::new());
        // Warm-up pass (fills the plan cache), then timed passes.
        serve_pass_with_stall(engine, &db, &cache, &pool, &requests, d.stall);
        let mut best = Duration::MAX;
        for _ in 0..d.measurements {
            let t = serve_pass_with_stall(engine, &db, &cache, &pool, &requests, d.stall);
            best = best.min(t);
        }
        let seconds = best.as_secs_f64();
        serving.push(ServeRow {
            threads,
            requests: requests.len() as u64,
            stall_micros: d.stall.as_micros() as u64,
            seconds,
            qps: requests.len() as f64 / seconds,
            speedup_vs_one_thread: 0.0, // filled in below
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
        });
    }
    let one_thread_qps = serving[0].qps;
    for row in &mut serving {
        row.speedup_vs_one_thread = row.qps / one_thread_qps;
    }
    let qps_speedup_at_4_threads = serving
        .iter()
        .find(|r| r.threads == 4)
        .map(|r| r.speedup_vs_one_thread)
        .unwrap_or(1.0);

    // Pure-CPU serving through the public server API: no stall, so on a
    // single-CPU host these rows measure scheduling overhead, not speedup.
    let mut cpu = Vec::new();
    for &threads in &THREAD_COUNTS {
        let server = FdbServer::new(engine, Arc::clone(&db), threads);
        let mut best = Duration::MAX;
        for _ in 0..d.measurements {
            let start = Instant::now();
            let outcomes = server.serve_batch(requests.clone());
            let t = start.elapsed();
            assert!(outcomes.iter().all(|o| o.is_ok()));
            best = best.min(t);
        }
        let seconds = best.as_secs_f64();
        cpu.push(CpuRow {
            threads,
            requests: requests.len() as u64,
            seconds,
            qps: requests.len() as f64 / seconds,
        });
    }

    // Parallel enumeration: deep chain (width 2) and forest product
    // (width 4), each pinned against the sequential result first.
    let mut enumeration = Vec::new();
    let enum_reps = vec![
        (
            "deep_chain".to_string(),
            Arc::new(wide_forest(1, d.enum_outer, d.enum_inner)),
        ),
        (
            "forest_product".to_string(),
            Arc::new(wide_forest(2, d.enum_outer / 25, d.enum_inner / 20)),
        ),
    ];
    for (name, rep) in &enum_reps {
        let sequential = materialize(rep).expect("sequential materialize");
        let tuples = sequential.len() as u64;
        let mut best_seq = Duration::MAX;
        for _ in 0..d.measurements {
            let start = Instant::now();
            let out = materialize(rep).expect("sequential materialize");
            best_seq = best_seq.min(start.elapsed());
            assert_eq!(out.len(), sequential.len());
        }
        for &threads in &THREAD_COUNTS[1..] {
            let pool = ThreadPool::new(threads);
            let par = par_materialize(rep, &pool).expect("parallel materialize");
            assert!(
                par == sequential,
                "parallel enumeration diverged from the sequential order"
            );
            let mut best_par = Duration::MAX;
            for _ in 0..d.measurements {
                let start = Instant::now();
                let out = par_materialize(rep, &pool).expect("parallel materialize");
                best_par = best_par.min(start.elapsed());
                assert_eq!(out.len(), sequential.len());
            }
            enumeration.push(EnumRow {
                name: name.clone(),
                tuples,
                threads,
                sequential_seconds: best_seq.as_secs_f64(),
                parallel_seconds: best_par.as_secs_f64(),
                speedup: best_seq.as_secs_f64() / best_par.as_secs_f64(),
            });
        }
    }

    Pr6Report {
        serving,
        cpu,
        enumeration,
        qps_speedup_at_4_threads,
    }
}

/// Serialises the report as JSON (line-oriented, like `BENCH_PR5.json`).
pub fn render_json(report: &Pr6Report) -> String {
    BenchJson::new("pr6-concurrent-serving")
        .array("serving", &report.serving, |row| {
            format!(
                "{{\"threads\": {}, \"requests\": {}, \"stall_micros\": {}, \
                 \"seconds\": {:.6}, \"qps\": {:.1}, \"speedup_vs_one_thread\": {:.3}, \
                 \"cache_hits\": {}, \"cache_misses\": {}}}",
                row.threads,
                row.requests,
                row.stall_micros,
                row.seconds,
                row.qps,
                row.speedup_vs_one_thread,
                row.cache_hits,
                row.cache_misses,
            )
        })
        .array("cpu", &report.cpu, |row| {
            format!(
                "{{\"threads\": {}, \"requests\": {}, \"seconds\": {:.6}, \"qps\": {:.1}}}",
                row.threads, row.requests, row.seconds, row.qps,
            )
        })
        .array("enumeration", &report.enumeration, |row| {
            format!(
                "{{\"name\": \"{}\", \"tuples\": {}, \"threads\": {}, \
                 \"sequential_seconds\": {:.6}, \"parallel_seconds\": {:.6}, \
                 \"speedup\": {:.3}}}",
                row.name,
                row.tuples,
                row.threads,
                row.sequential_seconds,
                row.parallel_seconds,
                row.speedup,
            )
        })
        .field(
            "qps_speedup_at_4_threads",
            format!("{:.3}", report.qps_speedup_at_4_threads),
        )
        .finish()
}

/// Renders the human-readable tables printed by the `experiments` binary.
pub fn render_table(report: &Pr6Report) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<24} {:>9} {:>12} {:>12} {:>10} {:>9} {:>13}",
        "serving (with stall)", "threads", "stall (µs)", "qps", "speedup", "hits", "misses"
    )
    .expect("string write");
    for row in &report.serving {
        writeln!(
            out,
            "{:<24} {:>9} {:>12} {:>12.1} {:>9.2}x {:>9} {:>13}",
            "zipf mix",
            row.threads,
            row.stall_micros,
            row.qps,
            row.speedup_vs_one_thread,
            row.cache_hits,
            row.cache_misses
        )
        .expect("string write");
    }
    writeln!(
        out,
        "qps speedup at 4 threads: {:.2}x\n",
        report.qps_speedup_at_4_threads
    )
    .expect("string write");
    writeln!(
        out,
        "{:<24} {:>9} {:>12}",
        "serving (pure CPU)", "threads", "qps"
    )
    .expect("string write");
    for row in &report.cpu {
        writeln!(
            out,
            "{:<24} {:>9} {:>12.1}",
            "zipf mix", row.threads, row.qps
        )
        .expect("string write");
    }
    writeln!(
        out,
        "\n{:<24} {:>12} {:>9} {:>16} {:>14} {:>9}",
        "enumeration", "tuples", "threads", "sequential (s)", "parallel (s)", "speedup"
    )
    .expect("string write");
    for row in &report.enumeration {
        writeln!(
            out,
            "{:<24} {:>12} {:>9} {:>16.6} {:>14.6} {:>8.2}x",
            row.name,
            row.tuples,
            row.threads,
            row.sequential_seconds,
            row.parallel_seconds,
            row.speedup
        )
        .expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_every_section_and_serialises() {
        let report = run(Pr6Scale::Smoke);
        assert_eq!(report.serving.len(), THREAD_COUNTS.len());
        assert_eq!(report.cpu.len(), THREAD_COUNTS.len());
        assert_eq!(report.enumeration.len(), 2 * (THREAD_COUNTS.len() - 1));
        for row in &report.serving {
            assert!(row.qps > 0.0);
            assert!(
                row.cache_hits > row.cache_misses,
                "the Zipf mix should mostly hit the {TEMPLATES}-shape cache"
            );
        }
        for row in &report.enumeration {
            assert!(row.tuples > 0);
            assert!(row.parallel_seconds > 0.0);
        }
        let json = render_json(&report);
        assert!(json.contains("\"benchmark\": \"pr6-concurrent-serving\""));
        assert!(json.contains("\"stall_micros\""));
        assert!(json.contains("\"qps_speedup_at_4_threads\""));
        let table = render_table(&report);
        assert!(table.contains("serving (with stall)"));
        assert!(table.contains("enumeration"));
    }

    #[test]
    fn every_template_is_a_valid_request() {
        let d = Pr6Scale::Smoke.dims();
        let engine = FdbEngine::new();
        let mut shared = SharedDatabase::new();
        let forest = shared
            .insert("forest", wide_forest(d.chains, d.outer, d.inner))
            .expect("fresh database, unique name");
        let nested = shared
            .insert("nested", nested_shape(d))
            .expect("fresh database, unique name");
        let requests: Vec<ServeRequest> = (0..TEMPLATES)
            .map(|t| template_request(t, d.outer / 2, forest, nested))
            .collect();
        check_batch(&engine, &shared, &requests);
    }
}
