//! PR 2 benchmark: arena-native structural operators and direct arena
//! construction.
//!
//! Two measurement groups:
//!
//! * **Structural operators** — each of swap, merge, absorb, push-up and
//!   projection applied to a synthetic mid-size f-representation, measuring
//!   the arena-native rewrite (`fdb_frep::ops`) against the thaw-path
//!   reference it replaced (`fdb_frep::ops::oracle`: thaw to the builder
//!   form, restructure the pointer tree, freeze back).  Both sides run the
//!   same logical rewrite; the delta is the two linear copies plus the
//!   per-node allocations the thaw path pays around it.
//! * **Construction** — `build_frep` (direct arena emission with watermark
//!   rollback) against the pre-PR-2 forest path
//!   (`build_frep_via_forest`: assemble an owned builder forest, freeze
//!   once) on the grocery join and a randomized exp3-style workload.
//!
//! The `experiments bench-pr2` subcommand prints the table and serialises
//! the rows as `BENCH_PR2.json`; `--scale smoke` shrinks the inputs and
//! repetition counts so CI can keep the harness from bit-rotting.

use crate::report::BenchJson;
use fdb_common::{AttrId, Catalog, Query, Value};
use fdb_datagen::{populate, random_query, random_schema, ValueDistribution};
use fdb_frep::build::build_frep_via_forest;
use fdb_frep::{build_frep, ops, Entry, FRep, Union};
use fdb_ftree::{DepEdge, FTree, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

/// One structural-operator measurement.
#[derive(Clone, Debug)]
pub struct OpRow {
    /// Workload name (stable across refactors).
    pub name: String,
    /// Singleton count of the input representation.
    pub singletons: u64,
    /// Timed repetitions per measurement.
    pub reps: u32,
    /// Best wall time of one arena-native application.
    pub arena_seconds: f64,
    /// Best wall time of one thaw-path (oracle) application.
    pub thaw_seconds: f64,
    /// `thaw_seconds / arena_seconds`.
    pub speedup: f64,
}

/// One construction measurement.
#[derive(Clone, Debug)]
pub struct BuildRow {
    /// Workload name.
    pub name: String,
    /// Singleton count of the built representation.
    pub singletons: u64,
    /// Timed repetitions per measurement.
    pub reps: u32,
    /// Best wall time of one direct arena build.
    pub direct_seconds: f64,
    /// Best wall time of one builder-forest build.
    pub forest_seconds: f64,
    /// `forest_seconds / direct_seconds`.
    pub speedup: f64,
}

/// The full PR 2 benchmark result.
#[derive(Clone, Debug)]
pub struct Pr2Report {
    /// Structural-operator rows.
    pub ops: Vec<OpRow>,
    /// Geometric mean of the operator speedups.
    pub ops_speedup_geomean: f64,
    /// Construction rows.
    pub build: Vec<BuildRow>,
}

/// Benchmark scale: `smoke` keeps CI runs to a couple of seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pr2Scale {
    /// Tiny inputs, few repetitions — a bit-rot canary, not a measurement.
    Smoke,
    /// The committed `BENCH_PR2.json` numbers.
    Full,
}

impl Pr2Scale {
    fn dims(self) -> Dims {
        match self {
            Pr2Scale::Smoke => Dims {
                outer: 40,
                inner: 8,
                measurements: 2,
                reps: 2,
                build_rows: 300,
            },
            Pr2Scale::Full => Dims {
                outer: 400,
                inner: 40,
                measurements: 5,
                reps: 12,
                build_rows: 3_000,
            },
        }
    }
}

/// Workload size knobs.
#[derive(Clone, Copy)]
struct Dims {
    /// Entries of the outermost union.
    outer: u64,
    /// Entries per nested union.
    inner: u64,
    /// Timed measurements (best one reported).
    measurements: usize,
    /// Operator applications per measurement.
    reps: u32,
    /// Rows per relation in the construction workload.
    build_rows: usize,
}

fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
    ids.iter().map(|&i| AttrId(i)).collect()
}

fn leaf_union(node: NodeId, values: impl Iterator<Item = u64>) -> Union {
    Union::new(node, values.map(|v| Entry::leaf(Value::new(v))).collect())
}

/// Swap workload: A{0} → B{1} → (C{2}, D{3}) with C dependent on A (it
/// follows A down) and D independent (it stays with B) — the general swap
/// with both a `G_ab` and an `F_b` part.
fn swap_input(d: Dims) -> (FRep, NodeId) {
    let edges = vec![
        DepEdge::new("RAB", attrs(&[0, 1]), d.outer),
        DepEdge::new("RAC", attrs(&[0, 2]), d.outer),
        DepEdge::new("RBD", attrs(&[1, 3]), d.inner),
    ];
    let mut tree = FTree::new(edges);
    let a = tree.add_node(attrs(&[0]), None).unwrap();
    let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
    let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
    let d_node = tree.add_node(attrs(&[3]), Some(b)).unwrap();
    let a_entries = (0..d.outer)
        .map(|av| Entry {
            value: Value::new(av),
            children: vec![Union::new(
                b,
                // Overlapping B ranges across A values make the regrouped
                // inner unions non-trivial.
                (av..av + d.inner)
                    .map(|bv| Entry {
                        value: Value::new(bv),
                        children: vec![
                            leaf_union(c, std::iter::once(av * 1_000 + bv)),
                            leaf_union(d_node, std::iter::once(bv)),
                        ],
                    })
                    .collect(),
            )],
        })
        .collect();
    let rep = FRep::from_parts(tree, vec![Union::new(a, a_entries)]).unwrap();
    (rep, b)
}

/// Merge workload: the product of two root unions over overlapping value
/// ranges, merged on their roots — half the values survive, so the prune
/// pass does real work.
fn merge_input(d: Dims) -> (FRep, NodeId, NodeId) {
    let build_side = |root_attr: u32, child_attr: u32, name: &str, offset: u64| {
        let edges = vec![DepEdge::new(name, attrs(&[root_attr, child_attr]), d.outer)];
        let mut tree = FTree::new(edges);
        let root = tree.add_node(attrs(&[root_attr]), None).unwrap();
        let child = tree.add_node(attrs(&[child_attr]), Some(root)).unwrap();
        let entries = (0..d.outer)
            .map(|v| Entry {
                value: Value::new(v + offset),
                children: vec![leaf_union(child, v..v + d.inner)],
            })
            .collect();
        FRep::from_parts(tree, vec![Union::new(root, entries)]).unwrap()
    };
    let left = build_side(0, 1, "R", 0);
    let right = build_side(2, 3, "S", d.outer / 2);
    let rep = ops::product(left, right).unwrap();
    let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
    let b = rep.tree().node_of_attr(AttrId(2)).unwrap();
    (rep, a, b)
}

/// Absorb workload: the chain A{0} → B{1} → C{2} with `A = C` enforced by
/// absorbing C into A; roughly half the (A, B) branches survive.
fn absorb_input(d: Dims) -> (FRep, NodeId, NodeId) {
    let edges = vec![
        DepEdge::new("RAB", attrs(&[0, 1]), d.outer),
        DepEdge::new("RBC", attrs(&[1, 2]), d.inner),
    ];
    let mut tree = FTree::new(edges);
    let a = tree.add_node(attrs(&[0]), None).unwrap();
    let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
    let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
    let a_entries = (0..d.outer)
        .map(|av| Entry {
            value: Value::new(av),
            children: vec![Union::new(
                b,
                (0..d.inner)
                    .map(|bv| Entry {
                        value: Value::new(bv),
                        // Even B values carry a C-union containing the A
                        // value (the entry survives), odd ones do not.
                        children: vec![if bv % 2 == 0 {
                            leaf_union(c, [av, av + d.outer].into_iter())
                        } else {
                            leaf_union(c, [av + d.outer].into_iter())
                        }],
                    })
                    .collect(),
            )],
        })
        .collect();
    let rep = FRep::from_parts(tree, vec![Union::new(a, a_entries)]).unwrap();
    (rep, a, c)
}

/// Push-up workload: A{0} → B{1} with B independent of A — every A-entry
/// carries an identical B-union that the operator lifts out once.
fn push_up_input(d: Dims) -> (FRep, NodeId) {
    let edges = vec![
        DepEdge::new("R", attrs(&[0]), d.outer),
        DepEdge::new("S", attrs(&[1]), d.inner),
    ];
    let mut tree = FTree::new(edges);
    let a = tree.add_node(attrs(&[0]), None).unwrap();
    let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
    let a_entries = (0..d.outer)
        .map(|av| Entry {
            value: Value::new(av),
            children: vec![leaf_union(b, 0..d.inner * 4)],
        })
        .collect();
    let rep = FRep::from_parts(tree, vec![Union::new(a, a_entries)]).unwrap();
    (rep, b)
}

/// Projection workload: the chain A{0} → B{1} → C{2} projected onto
/// {A, C} — the inner node B is swapped down to a leaf and removed.
fn project_input(d: Dims) -> (FRep, BTreeSet<AttrId>) {
    let edges = vec![
        DepEdge::new("RAB", attrs(&[0, 1]), d.outer),
        DepEdge::new("RBC", attrs(&[1, 2]), d.inner),
    ];
    let mut tree = FTree::new(edges);
    let a = tree.add_node(attrs(&[0]), None).unwrap();
    let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
    let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
    let a_entries = (0..d.outer)
        .map(|av| Entry {
            value: Value::new(av),
            children: vec![Union::new(
                b,
                (av..av + d.inner)
                    .map(|bv| Entry {
                        value: Value::new(bv),
                        children: vec![leaf_union(c, bv..bv + 3)],
                    })
                    .collect(),
            )],
        })
        .collect();
    let rep = FRep::from_parts(tree, vec![Union::new(a, a_entries)]).unwrap();
    (rep, attrs(&[0, 2]))
}

/// Times `apply` on fresh clones of `input`, best of `measurements` runs of
/// `reps` applications; returns seconds per application.
fn time_op<F: FnMut(&mut FRep)>(input: &FRep, d: Dims, mut apply: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..d.measurements {
        let mut total = 0.0f64;
        for _ in 0..d.reps {
            let mut rep = input.clone();
            let start = Instant::now();
            apply(&mut rep);
            total += start.elapsed().as_secs_f64();
            assert!(rep.size() > 0, "benchmark op must not empty the input");
        }
        best = best.min(total / d.reps as f64);
    }
    best
}

/// Measures one structural operator both ways and checks the two paths agree
/// bit for bit before timing.
fn measure_op<A, O>(name: &str, input: &FRep, d: Dims, mut arena: A, mut thaw: O) -> OpRow
where
    A: FnMut(&mut FRep),
    O: FnMut(&mut FRep),
{
    let mut via_arena = input.clone();
    let mut via_thaw = input.clone();
    arena(&mut via_arena);
    thaw(&mut via_thaw);
    assert!(
        via_arena.store_identical(&via_thaw),
        "{name}: arena-native and thaw-path outputs diverge"
    );

    let arena_seconds = time_op(input, d, &mut arena);
    let thaw_seconds = time_op(input, d, &mut thaw);
    OpRow {
        name: name.to_string(),
        singletons: input.size() as u64,
        reps: d.reps,
        arena_seconds,
        thaw_seconds,
        speedup: thaw_seconds / arena_seconds.max(1e-12),
    }
}

/// The grocery Q1 construction workload.
fn grocery_build() -> (fdb_relation::Database, Query, FTree) {
    let g = fdb_datagen::grocery_database();
    let query = g.q1();
    let search = fdb_plan::optimal_ftree(g.db.catalog(), &query, |r| g.db.rel_len(r) as u64)
        .expect("grocery Q1 has an f-tree");
    (g.db, query, search.tree)
}

/// An exp3-style randomized construction workload: three relations of
/// `rows` tuples joined by two equalities.
fn exp3_build(rows: usize) -> (fdb_relation::Database, Query, FTree) {
    for seed in 0u64.. {
        let mut rng = StdRng::seed_from_u64(0x5032_3A33 ^ seed);
        let catalog: Catalog = random_schema(&mut rng, 3, 8);
        let rels: Vec<_> = catalog.rels().collect();
        let db = populate(&mut rng, &catalog, rows, 50, ValueDistribution::Uniform);
        let query = random_query(&mut rng, &catalog, &rels, 2);
        let Ok(search) = fdb_plan::optimal_ftree(db.catalog(), &query, |r| db.rel_len(r) as u64)
        else {
            continue;
        };
        let Ok(rep) = build_frep(&db, &query, &search.tree) else {
            continue;
        };
        if rep.size() > rows {
            return (db, query, search.tree);
        }
    }
    unreachable!("some seed produces a non-trivial construction workload");
}

/// Measures one construction workload both ways.
fn measure_build(
    name: &str,
    db: &fdb_relation::Database,
    query: &Query,
    tree: &FTree,
    d: Dims,
) -> BuildRow {
    let direct = build_frep(db, query, tree).expect("direct build succeeds");
    let forest = build_frep_via_forest(db, query, tree).expect("forest build succeeds");
    assert_eq!(
        direct.to_forest(),
        forest.to_forest(),
        "{name}: the two construction paths diverge"
    );

    let time = |f: &mut dyn FnMut() -> FRep| {
        let mut best = f64::INFINITY;
        for _ in 0..d.measurements {
            let mut total = 0.0f64;
            for _ in 0..d.reps {
                let start = Instant::now();
                let rep = f();
                total += start.elapsed().as_secs_f64();
                std::hint::black_box(&rep);
            }
            best = best.min(total / d.reps as f64);
        }
        best
    };
    let direct_seconds = time(&mut || build_frep(db, query, tree).expect("build"));
    let forest_seconds = time(&mut || build_frep_via_forest(db, query, tree).expect("build"));
    BuildRow {
        name: name.to_string(),
        singletons: direct.size() as u64,
        reps: d.reps,
        direct_seconds,
        forest_seconds,
        speedup: forest_seconds / direct_seconds.max(1e-12),
    }
}

/// Runs the full PR 2 benchmark at the given scale.
pub fn run(scale: Pr2Scale) -> Pr2Report {
    let d = scale.dims();
    let mut op_rows = Vec::new();

    let (rep, b) = swap_input(d);
    op_rows.push(measure_op(
        "swap_chain_with_split",
        &rep,
        d,
        |r| {
            ops::swap(r, b).expect("swap applies");
        },
        |r| {
            ops::oracle::swap(r, b).expect("swap applies");
        },
    ));

    let (rep, a, bb) = merge_input(d);
    op_rows.push(measure_op(
        "merge_sibling_roots",
        &rep,
        d,
        move |r| {
            ops::merge(r, a, bb).expect("merge applies");
        },
        move |r| {
            ops::oracle::merge(r, a, bb).expect("merge applies");
        },
    ));

    let (rep, a, c) = absorb_input(d);
    op_rows.push(measure_op(
        "absorb_chain_endpoint",
        &rep,
        d,
        move |r| {
            ops::absorb(r, a, c).expect("absorb applies");
        },
        move |r| {
            ops::oracle::absorb(r, a, c).expect("absorb applies");
        },
    ));

    let (rep, b) = push_up_input(d);
    op_rows.push(measure_op(
        "push_up_independent_child",
        &rep,
        d,
        move |r| {
            ops::push_up(r, b).expect("push-up applies");
        },
        move |r| {
            ops::oracle::push_up(r, b).expect("push-up applies");
        },
    ));

    let (rep, keep) = project_input(d);
    let keep2 = keep.clone();
    op_rows.push(measure_op(
        "project_away_inner_node",
        &rep,
        d,
        move |r| {
            ops::project(r, &keep).expect("projection applies");
        },
        move |r| {
            ops::oracle::project(r, &keep2).expect("projection applies");
        },
    ));

    let geomean =
        (op_rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / op_rows.len().max(1) as f64).exp();

    let mut build_rows = Vec::new();
    let (db, query, tree) = grocery_build();
    build_rows.push(measure_build("build_grocery_q1", &db, &query, &tree, d));
    let (db, query, tree) = exp3_build(d.build_rows);
    build_rows.push(measure_build("build_exp3_random_K2", &db, &query, &tree, d));

    Pr2Report {
        ops: op_rows,
        ops_speedup_geomean: geomean,
        build: build_rows,
    }
}

/// Serialises the report as JSON (line-oriented, like `BENCH_PR1.json`).
pub fn render_json(report: &Pr2Report) -> String {
    BenchJson::new("pr2-structural-ops")
        .array("ops", &report.ops, |row| {
            format!(
                "{{\"name\": \"{}\", \"singletons\": {}, \"reps\": {}, \
                 \"arena_seconds\": {:.6}, \"thaw_seconds\": {:.6}, \"speedup\": {:.3}}}",
                row.name,
                row.singletons,
                row.reps,
                row.arena_seconds,
                row.thaw_seconds,
                row.speedup,
            )
        })
        .field(
            "ops_speedup_geomean",
            format!("{:.3}", report.ops_speedup_geomean),
        )
        .array("build", &report.build, |row| {
            format!(
                "{{\"name\": \"{}\", \"singletons\": {}, \"reps\": {}, \
                 \"direct_seconds\": {:.6}, \"forest_seconds\": {:.6}, \"speedup\": {:.3}}}",
                row.name,
                row.singletons,
                row.reps,
                row.direct_seconds,
                row.forest_seconds,
                row.speedup,
            )
        })
        .finish()
}

/// Renders the human-readable table printed by the `experiments` binary.
pub fn render_table(report: &Pr2Report) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<28} {:>12} {:>14} {:>14} {:>9}",
        "structural op", "singletons", "arena (s)", "thaw path (s)", "speedup"
    )
    .expect("string write");
    for row in &report.ops {
        writeln!(
            out,
            "{:<28} {:>12} {:>14.6} {:>14.6} {:>8.2}x",
            row.name, row.singletons, row.arena_seconds, row.thaw_seconds, row.speedup
        )
        .expect("string write");
    }
    writeln!(
        out,
        "geometric-mean speedup: {:.2}x\n",
        report.ops_speedup_geomean
    )
    .expect("string write");
    writeln!(
        out,
        "{:<28} {:>12} {:>14} {:>14} {:>9}",
        "construction", "singletons", "direct (s)", "forest (s)", "speedup"
    )
    .expect("string write");
    for row in &report.build {
        writeln!(
            out,
            "{:<28} {:>12} {:>14.6} {:>14.6} {:>8.2}x",
            row.name, row.singletons, row.direct_seconds, row.forest_seconds, row.speedup
        )
        .expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_runs_and_reports_consistent_rows() {
        let report = run(Pr2Scale::Smoke);
        assert_eq!(report.ops.len(), 5);
        assert_eq!(report.build.len(), 2);
        assert!(report.ops_speedup_geomean > 0.0);
        for row in &report.ops {
            assert!(row.arena_seconds > 0.0 && row.thaw_seconds > 0.0);
        }
        let json = render_json(&report);
        assert!(json.contains("\"ops_speedup_geomean\""));
        assert!(json.contains("build_grocery_q1"));
        let table = render_table(&report);
        assert!(table.contains("geometric-mean speedup"));
    }
}
