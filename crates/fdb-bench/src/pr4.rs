//! PR 4 benchmark: factorised aggregation.
//!
//! Two comparisons, each checked for bit-for-bit result agreement before any
//! timing:
//!
//! * **factorised vs materialise-then-aggregate** — `COUNT`/`SUM`/`MIN`/
//!   grouped `AVG` evaluated as one flat pass over the arena
//!   (`fdb_frep::aggregate`) against the classical plan: enumerate the
//!   represented relation tuple by tuple and aggregate with plain iterators.
//!   The workloads are product-heavy (products of independent chains), where
//!   the flat relation is combinatorially larger than the representation —
//!   the regime the aggregation paper targets.
//! * **arena pass vs overlay pass** — an aggregate consumed after a
//!   structural f-plan, evaluated two ways: execute the plan (fused) and
//!   aggregate the emitted arena, or fold the aggregate directly over the
//!   fused overlay (`FPlan::execute_aggregate`), which never emits the final
//!   arena.
//!
//! The `experiments bench-pr4` subcommand prints both tables and serialises
//! the rows as `BENCH_PR4.json`; `--scale smoke` shrinks the inputs so CI
//! can keep the harness from bit-rotting.

use crate::report::BenchJson;
use fdb_common::AttrId;
use fdb_common::Value;
use fdb_frep::aggregate::{self, AggregateKind};
use fdb_frep::{ops, Entry, FRep, Union};
use fdb_ftree::{DepEdge, FTree};
use fdb_plan::{FPlan, FPlanOp};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

/// One factorised-vs-flat aggregation measurement.
#[derive(Clone, Debug)]
pub struct AggRow {
    /// Workload name (stable across refactors).
    pub name: String,
    /// The evaluated aggregate, rendered (`COUNT(*)`, `SUM(a3)`, …).
    pub kind: String,
    /// Singleton count of the representation.
    pub singletons: u64,
    /// Tuples of the represented relation (what the flat path enumerates).
    pub tuples: u128,
    /// Timed repetitions per measurement.
    pub reps: u32,
    /// Best wall time of one factorised (arena-pass) evaluation.
    pub factorised_seconds: f64,
    /// Best wall time of one materialise-then-aggregate evaluation.
    pub flat_seconds: f64,
    /// `flat_seconds / factorised_seconds`.
    pub speedup: f64,
}

/// One arena-pass-vs-overlay-pass measurement.
#[derive(Clone, Debug)]
pub struct OverlayRow {
    /// Workload name.
    pub name: String,
    /// Singleton count of the input representation.
    pub singletons: u64,
    /// Operators in the executed plan.
    pub plan_ops: u32,
    /// Timed repetitions per measurement.
    pub reps: u32,
    /// Best wall time of plan execution plus arena aggregation.
    pub arena_seconds: f64,
    /// Best wall time of the overlay aggregate (no final-arena emission).
    pub overlay_seconds: f64,
    /// `arena_seconds / overlay_seconds`.
    pub speedup: f64,
}

/// The full PR 4 benchmark result.
#[derive(Clone, Debug)]
pub struct Pr4Report {
    /// Factorised-vs-flat rows.
    pub aggregates: Vec<AggRow>,
    /// Arena-vs-overlay rows.
    pub overlay: Vec<OverlayRow>,
    /// Geometric mean of the factorised-vs-flat speedups.
    pub flat_speedup_geomean: f64,
    /// Geometric mean of the arena-vs-overlay speedups.
    pub overlay_speedup_geomean: f64,
    /// The `EvalStats` counters table of one representative engine-level
    /// aggregate query (computed once by [`run`], printed by
    /// [`render_table`]).
    pub engine_counters: String,
}

/// Benchmark scale: `smoke` keeps CI runs to a couple of seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pr4Scale {
    /// Tiny inputs, few repetitions — a bit-rot canary, not a measurement.
    Smoke,
    /// The committed `BENCH_PR4.json` numbers.
    Full,
}

/// Workload size knobs.
#[derive(Clone, Copy)]
struct Dims {
    /// Root entries of each chain in the two-factor products.
    outer2: u64,
    /// Child entries per root entry in the two-factor products.
    inner2: u64,
    /// Root entries of each chain in the three-factor product.
    outer3: u64,
    /// Child entries per root entry in the three-factor product.
    inner3: u64,
    /// Timed measurements (best one reported).
    measurements: usize,
    /// Evaluations per measurement.
    reps: u32,
}

impl Pr4Scale {
    fn dims(self) -> Dims {
        match self {
            Pr4Scale::Smoke => Dims {
                outer2: 12,
                inner2: 4,
                outer3: 6,
                inner3: 2,
                measurements: 2,
                reps: 2,
            },
            Pr4Scale::Full => Dims {
                outer2: 150,
                inner2: 20,
                outer3: 40,
                inner3: 5,
                measurements: 3,
                reps: 2,
            },
        }
    }
}

fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
    ids.iter().map(|&i| AttrId(i)).collect()
}

/// A two-level chain `root{ra} → child{rb}` with `outer` root entries and
/// `inner` child entries each (overlapping child ranges).
fn chain(ra: u32, rb: u32, name: &str, outer: u64, inner: u64) -> FRep {
    let edges = vec![DepEdge::new(name, attrs(&[ra, rb]), outer)];
    let mut tree = FTree::new(edges);
    let root = tree.add_node(attrs(&[ra]), None).unwrap();
    let child = tree.add_node(attrs(&[rb]), Some(root)).unwrap();
    let entries = (0..outer)
        .map(|v| Entry {
            value: Value::new(v),
            children: vec![Union::new(
                child,
                (v..v + inner).map(|x| Entry::leaf(Value::new(x))).collect(),
            )],
        })
        .collect();
    FRep::from_parts(tree, vec![Union::new(root, entries)]).unwrap()
}

/// The product of `k` independent chains — the product-heavy shape where the
/// flat relation is combinatorially larger than the representation.
fn product_of_chains(k: u32, outer: u64, inner: u64) -> FRep {
    let mut rep: Option<FRep> = None;
    for c in 0..k {
        let side = chain(c * 2, c * 2 + 1, &format!("R{c}"), outer, inner);
        rep = Some(match rep {
            None => side,
            Some(acc) => ops::product(acc, side).unwrap(),
        });
    }
    rep.expect("at least one chain")
}

/// Times `run`, best of `measurements` runs of `reps` evaluations; returns
/// seconds per evaluation.
fn time_runs<F: FnMut()>(d: Dims, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..d.measurements {
        let start = Instant::now();
        for _ in 0..d.reps {
            run();
        }
        best = best.min(start.elapsed().as_secs_f64() / d.reps as f64);
    }
    best
}

/// Measures one factorised-vs-flat aggregation workload.
fn measure_agg(
    name: &str,
    rep: &FRep,
    kind: AggregateKind,
    group_by: &[AttrId],
    d: Dims,
) -> AggRow {
    let factorised = aggregate::evaluate(rep, kind, group_by).expect("factorised aggregate");
    let flat = aggregate::by_enumeration(rep, kind, group_by).expect("flat aggregate");
    assert_eq!(
        factorised, flat,
        "{name}: factorised and flat aggregation disagree"
    );

    let factorised_seconds = time_runs(d, || {
        std::hint::black_box(aggregate::evaluate(rep, kind, group_by).expect("aggregate"));
    });
    let flat_seconds = time_runs(d, || {
        std::hint::black_box(aggregate::by_enumeration(rep, kind, group_by).expect("flat"));
    });
    AggRow {
        name: name.to_string(),
        kind: kind.to_string(),
        singletons: rep.size() as u64,
        tuples: rep.tuple_count(),
        reps: d.reps,
        factorised_seconds,
        flat_seconds,
        speedup: flat_seconds / factorised_seconds.max(1e-12),
    }
}

/// Measures one arena-vs-overlay workload: the plan executes (fused) and the
/// aggregate reads the emitted arena, against the overlay sink that skips
/// the emission.
fn measure_overlay(
    name: &str,
    rep: &FRep,
    plan: &FPlan,
    kind: AggregateKind,
    d: Dims,
) -> OverlayRow {
    let arena_result = {
        let mut executed = rep.clone();
        plan.execute(&mut executed).expect("plan executes");
        aggregate::evaluate(&executed, kind, &[]).expect("arena aggregate")
    };
    let (overlay_result, on_overlay) = plan
        .execute_aggregate(rep, kind, &[])
        .expect("overlay aggregate");
    assert!(on_overlay, "{name}: plan must end in a structural segment");
    assert_eq!(
        arena_result, overlay_result,
        "{name}: arena and overlay aggregation disagree"
    );

    let arena_seconds = time_runs(d, || {
        let mut executed = rep.clone();
        plan.execute(&mut executed).expect("plan executes");
        std::hint::black_box(aggregate::evaluate(&executed, kind, &[]).expect("aggregate"));
    });
    let overlay_seconds = time_runs(d, || {
        std::hint::black_box(plan.execute_aggregate(rep, kind, &[]).expect("sink"));
    });
    OverlayRow {
        name: name.to_string(),
        singletons: rep.size() as u64,
        plan_ops: plan.len() as u32,
        reps: d.reps,
        arena_seconds,
        overlay_seconds,
        speedup: arena_seconds / overlay_seconds.max(1e-12),
    }
}

/// Swap-cycle input for the overlay rows: A{0} → B{1} → (C{2}, D{3}) with C
/// dependent on A — the pr3 regrouping shape.
fn swap_cycle_rep(outer: u64, inner: u64) -> (FRep, FPlan) {
    let edges = vec![
        DepEdge::new("RAB", attrs(&[0, 1]), outer),
        DepEdge::new("RAC", attrs(&[0, 2]), outer),
        DepEdge::new("RBD", attrs(&[1, 3]), inner),
    ];
    let mut tree = FTree::new(edges);
    let a = tree.add_node(attrs(&[0]), None).unwrap();
    let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
    let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
    let d_node = tree.add_node(attrs(&[3]), Some(b)).unwrap();
    let a_entries = (0..outer)
        .map(|av| Entry {
            value: Value::new(av),
            children: vec![Union::new(
                b,
                (av..av + inner)
                    .map(|bv| Entry {
                        value: Value::new(bv),
                        children: vec![
                            Union::new(c, vec![Entry::leaf(Value::new(av * 1_000))]),
                            Union::new(d_node, vec![Entry::leaf(Value::new(bv))]),
                        ],
                    })
                    .collect(),
            )],
        })
        .collect();
    let rep = FRep::from_parts(tree, vec![Union::new(a, a_entries)]).unwrap();
    let plan = FPlan::new(vec![FPlanOp::Swap(b), FPlanOp::Swap(a), FPlanOp::Swap(b)]);
    (rep, plan)
}

/// A forest of independent chains whose plan swaps three chains' children up
/// — wide untouched regions that the overlay never copies.
fn wide_forest_rep(chains: u32, outer: u64, inner: u64) -> (FRep, FPlan) {
    let rep = product_of_chains(chains, outer, inner);
    let swaps = (0..3u32.min(chains))
        .map(|c| FPlanOp::Swap(rep.tree().node_of_attr(AttrId(c * 2 + 1)).unwrap()))
        .collect();
    (rep, FPlan::new(swaps))
}

/// Runs the full PR 4 benchmark at the given scale.
pub fn run(scale: Pr4Scale) -> Pr4Report {
    let d = scale.dims();

    // Factorised vs materialise-then-aggregate on product-heavy shapes.
    let mut aggregates = Vec::new();
    let rep2 = product_of_chains(2, d.outer2, d.inner2);
    aggregates.push(measure_agg(
        "product2_count",
        &rep2,
        AggregateKind::Count,
        &[],
        d,
    ));
    aggregates.push(measure_agg(
        "product2_sum_child",
        &rep2,
        AggregateKind::Sum(AttrId(1)),
        &[],
        d,
    ));
    aggregates.push(measure_agg(
        "product2_avg_grouped_by_root",
        &rep2,
        AggregateKind::Avg(AttrId(3)),
        &[AttrId(0)],
        d,
    ));
    let rep3 = product_of_chains(3, d.outer3, d.inner3);
    aggregates.push(measure_agg(
        "product3_min_child",
        &rep3,
        AggregateKind::Min(AttrId(5)),
        &[],
        d,
    ));
    aggregates.push(measure_agg(
        "product3_max_grouped_by_root",
        &rep3,
        AggregateKind::Max(AttrId(3)),
        &[AttrId(2)],
        d,
    ));

    // Arena pass vs overlay pass after a structural plan.
    let mut overlay = Vec::new();
    let (rep, plan) = swap_cycle_rep(d.outer2, d.inner2);
    overlay.push(measure_overlay(
        "swap_cycle_then_count",
        &rep,
        &plan,
        AggregateKind::Count,
        d,
    ));
    overlay.push(measure_overlay(
        "swap_cycle_then_sum",
        &rep,
        &plan,
        AggregateKind::Sum(AttrId(3)),
        d,
    ));
    let (rep, plan) = wide_forest_rep(4, d.outer2, d.inner2);
    overlay.push(measure_overlay(
        "wide_forest_swaps_then_count",
        &rep,
        &plan,
        AggregateKind::Count,
        d,
    ));

    let geomean = |rows: &[f64]| -> f64 {
        (rows.iter().map(|s| s.ln()).sum::<f64>() / rows.len().max(1) as f64).exp()
    };
    let flat_speedup_geomean = geomean(&aggregates.iter().map(|r| r.speedup).collect::<Vec<_>>());
    let overlay_speedup_geomean = geomean(&overlay.iter().map(|r| r.speedup).collect::<Vec<_>>());
    Pr4Report {
        aggregates,
        overlay,
        flat_speedup_geomean,
        overlay_speedup_geomean,
        engine_counters: engine_counters_demo(),
    }
}

/// Serialises the report as JSON (line-oriented, like `BENCH_PR3.json`).
pub fn render_json(report: &Pr4Report) -> String {
    BenchJson::new("pr4-factorised-aggregation")
        .array("aggregates", &report.aggregates, |row| {
            format!(
                "{{\"name\": \"{}\", \"kind\": \"{}\", \"singletons\": {}, \"tuples\": {}, \
                 \"reps\": {}, \"factorised_seconds\": {:.9}, \"flat_seconds\": {:.6}, \
                 \"speedup\": {:.3}}}",
                row.name,
                row.kind,
                row.singletons,
                row.tuples,
                row.reps,
                row.factorised_seconds,
                row.flat_seconds,
                row.speedup,
            )
        })
        .array("overlay", &report.overlay, |row| {
            format!(
                "{{\"name\": \"{}\", \"singletons\": {}, \"plan_ops\": {}, \"reps\": {}, \
                 \"arena_seconds\": {:.9}, \"overlay_seconds\": {:.9}, \"speedup\": {:.3}}}",
                row.name,
                row.singletons,
                row.plan_ops,
                row.reps,
                row.arena_seconds,
                row.overlay_seconds,
                row.speedup,
            )
        })
        .field(
            "flat_speedup_geomean",
            format!("{:.3}", report.flat_speedup_geomean),
        )
        .field(
            "overlay_speedup_geomean",
            format!("{:.3}", report.overlay_speedup_geomean),
        )
        .finish()
}

/// Runs one representative engine-level aggregate query (COUNT over a
/// grocery follow-up join) and returns its `EvalStats` counters table — the
/// consistent per-evaluation statistics block (fused segments and overlay
/// aggregates included) the report prints instead of ad-hoc stat lines.
fn engine_counters_demo() -> String {
    use fdb_core::{FactorisedQuery, FdbEngine};
    let g = fdb_datagen::grocery_database();
    let engine = FdbEngine::new();
    let base = engine
        .evaluate_flat(&g.db, &g.q1())
        .expect("grocery Q1 evaluates");
    let fq = FactorisedQuery::equalities(vec![(g.attr("Orders.oid"), g.attr("Disp.dispatcher"))]);
    let out = engine
        .evaluate_factorised_aggregate(&base.result, &fq, &fdb_common::AggregateHead::count())
        .expect("aggregate query evaluates");
    out.stats.counters_table()
}

/// Renders the human-readable tables printed by the `experiments` binary.
pub fn render_table(report: &Pr4Report) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<30} {:<12} {:>12} {:>14} {:>14} {:>14} {:>9}",
        "aggregate workload",
        "kind",
        "singletons",
        "tuples",
        "factorised (s)",
        "flat (s)",
        "speedup"
    )
    .expect("string write");
    for row in &report.aggregates {
        writeln!(
            out,
            "{:<30} {:<12} {:>12} {:>14} {:>14.9} {:>14.6} {:>8.1}x",
            row.name,
            row.kind,
            row.singletons,
            row.tuples,
            row.factorised_seconds,
            row.flat_seconds,
            row.speedup
        )
        .expect("string write");
    }
    writeln!(
        out,
        "geometric-mean speedup (factorised vs materialise-then-aggregate): {:.1}x\n",
        report.flat_speedup_geomean
    )
    .expect("string write");
    writeln!(
        out,
        "{:<30} {:>12} {:>5} {:>14} {:>14} {:>9}",
        "overlay workload", "singletons", "ops", "arena (s)", "overlay (s)", "speedup"
    )
    .expect("string write");
    for row in &report.overlay {
        writeln!(
            out,
            "{:<30} {:>12} {:>5} {:>14.9} {:>14.9} {:>8.2}x",
            row.name,
            row.singletons,
            row.plan_ops,
            row.arena_seconds,
            row.overlay_seconds,
            row.speedup
        )
        .expect("string write");
    }
    writeln!(
        out,
        "geometric-mean speedup (overlay pass vs arena pass): {:.2}x",
        report.overlay_speedup_geomean
    )
    .expect("string write");
    out.push_str("\nengine counters (COUNT over a grocery follow-up join):\n");
    out.push_str(&report.engine_counters);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_runs_and_reports_consistent_rows() {
        let report = run(Pr4Scale::Smoke);
        assert_eq!(report.aggregates.len(), 5);
        assert_eq!(report.overlay.len(), 3);
        assert!(report.flat_speedup_geomean > 0.0);
        assert!(report.overlay_speedup_geomean > 0.0);
        for row in &report.aggregates {
            assert!(row.factorised_seconds > 0.0 && row.flat_seconds > 0.0);
            assert!(row.tuples > 0);
        }
        let json = render_json(&report);
        assert!(json.contains("\"flat_speedup_geomean\""));
        assert!(json.contains("product2_count"));
        assert!(json.contains("swap_cycle_then_count"));
        let table = render_table(&report);
        assert!(table.contains("geometric-mean speedup"));
        assert!(
            table.contains("fused segments / overlay aggregates"),
            "the report prints the consistent EvalStats counters table"
        );
    }
}
