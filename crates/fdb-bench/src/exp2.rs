//! Experiment 2 (Figures 6 and 9): query optimisation on factorised data.
//!
//! Input f-trees are optimal f-trees of queries with `K` equality selections
//! over `R = 4` relations with `A = 10` attributes; the new queries add `L`
//! further (non-redundant) equalities, with `K + L < A`.  The paper compares
//! the full-search and greedy optimisers on two axes:
//!
//! * Figure 6: the cost `s(f)` of the computed f-plan and the cost `s(T)` of
//!   the resulting f-tree (greedy is optimal or near-optimal except for
//!   small `K` and large `L`; all averages lie between 1 and 2);
//! * Figure 9: the optimisation time (greedy is 2–3 orders of magnitude
//!   faster).

use crate::Scale;
use fdb_common::RelId;
use fdb_datagen::{random_followup_equalities, random_query, random_schema};
use fdb_plan::{optimal_ftree, ExhaustiveOptimizer, GreedyOptimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Number of relations in the input queries (as in the paper).
pub const RELATIONS: usize = 4;
/// Number of attributes (as in the paper).
pub const ATTRIBUTES: usize = 10;

/// One averaged measurement point of Experiment 2.
#[derive(Clone, Debug)]
pub struct Exp2Row {
    /// Number of equalities `K` already folded into the input f-tree.
    pub input_equalities: usize,
    /// Number of new equalities `L` in the query being optimised.
    pub query_equalities: usize,
    /// Average f-plan cost `s(f)` of the full-search optimiser.
    pub full_plan_cost: f64,
    /// Average result f-tree cost of the full-search optimiser.
    pub full_result_cost: f64,
    /// Average f-plan cost of the greedy optimiser.
    pub greedy_plan_cost: f64,
    /// Average result f-tree cost of the greedy optimiser.
    pub greedy_result_cost: f64,
    /// Average optimisation time of the full-search optimiser.
    pub full_time: Duration,
    /// Average optimisation time of the greedy optimiser.
    pub greedy_time: Duration,
    /// Number of repetitions averaged over.
    pub repetitions: usize,
}

/// Sweeps the `(K, L)` grid with `K + L < ATTRIBUTES` and compares the two
/// optimisers.
pub fn run(scale: Scale, max_input_equalities: usize, max_query_equalities: usize) -> Vec<Exp2Row> {
    let mut rng = StdRng::seed_from_u64(0xFDB2);
    let mut rows = Vec::new();
    for k in 1..=max_input_equalities {
        for l in 1..=max_query_equalities {
            if k + l >= ATTRIBUTES {
                continue;
            }
            let reps = scale.repetitions();
            let mut acc = Exp2Row {
                input_equalities: k,
                query_equalities: l,
                full_plan_cost: 0.0,
                full_result_cost: 0.0,
                greedy_plan_cost: 0.0,
                greedy_result_cost: 0.0,
                full_time: Duration::ZERO,
                greedy_time: Duration::ZERO,
                repetitions: 0,
            };
            for _ in 0..reps {
                let catalog = random_schema(&mut rng, RELATIONS, ATTRIBUTES);
                let rels: Vec<RelId> = catalog.rels().collect();
                let base_query = random_query(&mut rng, &catalog, &rels, k);
                if base_query.equalities.len() < k {
                    continue;
                }
                let input_tree = optimal_ftree(&catalog, &base_query, |_| 1)
                    .expect("optimal f-tree for the base query")
                    .tree;
                let follow = random_followup_equalities(&mut rng, &catalog, &base_query, l);
                if follow.len() < l {
                    continue;
                }

                let start = Instant::now();
                let full = ExhaustiveOptimizer::new()
                    .optimize(&input_tree, &follow)
                    .expect("exhaustive optimisation succeeds");
                acc.full_time += start.elapsed();

                let start = Instant::now();
                let greedy = GreedyOptimizer::new()
                    .optimize(&input_tree, &follow)
                    .expect("greedy optimisation succeeds");
                acc.greedy_time += start.elapsed();

                acc.full_plan_cost += full.cost.max_intermediate;
                acc.full_result_cost += full.cost.final_cost;
                acc.greedy_plan_cost += greedy.cost.max_intermediate;
                acc.greedy_result_cost += greedy.cost.final_cost;
                acc.repetitions += 1;
            }
            if acc.repetitions > 0 {
                let n = acc.repetitions as f64;
                acc.full_plan_cost /= n;
                acc.full_result_cost /= n;
                acc.greedy_plan_cost /= n;
                acc.greedy_result_cost /= n;
                acc.full_time /= acc.repetitions as u32;
                acc.greedy_time /= acc.repetitions as u32;
                rows.push(acc);
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_never_beats_full_search_and_both_stay_small() {
        let rows = run(Scale::Quick, 3, 2);
        assert!(!rows.is_empty());
        for row in &rows {
            assert!(
                row.greedy_plan_cost + 1e-6 >= row.full_plan_cost,
                "greedy beat full search at K={} L={}",
                row.input_equalities,
                row.query_equalities
            );
            assert!(row.full_plan_cost >= 1.0 - 1e-9);
            assert!(
                row.full_plan_cost <= 2.5,
                "plan costs stay small on this workload"
            );
            assert!(row.full_result_cost <= row.full_plan_cost + 1e-6);
        }
    }
}
