//! PR 3 benchmark: fused f-plan execution vs the step-wise path.
//!
//! Times multi-step (k ≥ 3) structural f-plans — both hand-shaped chains in
//! the spirit of the paper's exp2/exp4 restructuring workloads and plans
//! actually produced by the full-search optimiser for follow-up equality
//! queries on factorised inputs — executed two ways:
//!
//! * **fused** — [`FPlan::execute`]: the plan's structural segments compile
//!   into single arena passes through `fdb_frep::ops::fuse`, so a k-step
//!   segment materialises no intermediate arenas;
//! * **step-wise** — [`FPlan::execute_stepwise`]: the PR 2 path, one
//!   arena-to-arena rewrite per operator.
//!
//! Both sides are checked bit-for-bit identical before timing.  The
//! `experiments bench-pr3` subcommand prints the table and serialises the
//! rows as `BENCH_PR3.json`; `--scale smoke` shrinks the inputs so CI can
//! keep the harness from bit-rotting.

use crate::report::BenchJson;
use fdb_common::AttrId;
use fdb_common::Value;
use fdb_core::FdbEngine;
use fdb_datagen::{
    populate, random_followup_equalities, random_query, random_schema, ValueDistribution,
};
use fdb_frep::{ops, Entry, FRep, Union};
use fdb_ftree::{DepEdge, FTree, NodeId};
use fdb_plan::{ExhaustiveOptimizer, FPlan, FPlanOp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

/// One fused-vs-stepwise plan measurement.
#[derive(Clone, Debug)]
pub struct PlanRow {
    /// Workload name (stable across refactors).
    pub name: String,
    /// Singleton count of the input representation.
    pub singletons: u64,
    /// Number of operators in the executed plan.
    pub plan_ops: u32,
    /// Timed repetitions per measurement.
    pub reps: u32,
    /// Best wall time of one fused execution.
    pub fused_seconds: f64,
    /// Best wall time of one step-wise execution.
    pub stepwise_seconds: f64,
    /// `stepwise_seconds / fused_seconds`.
    pub speedup: f64,
}

/// The full PR 3 benchmark result.
#[derive(Clone, Debug)]
pub struct Pr3Report {
    /// Plan rows.
    pub plans: Vec<PlanRow>,
    /// Geometric mean of the speedups.
    pub fused_speedup_geomean: f64,
}

/// Benchmark scale: `smoke` keeps CI runs to a couple of seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pr3Scale {
    /// Tiny inputs, few repetitions — a bit-rot canary, not a measurement.
    Smoke,
    /// The committed `BENCH_PR3.json` numbers.
    Full,
}

/// Workload size knobs.
#[derive(Clone, Copy)]
struct Dims {
    /// Entries of the outermost union of each synthetic chain.
    outer: u64,
    /// Entries per nested union.
    inner: u64,
    /// Independent chains in the wide-forest workload.
    chains: u32,
    /// Entries per nested union in the normalisation tower (the input size
    /// is `outer · tower_width^(levels-1)`, so this stays small).
    tower_width: u64,
    /// Rows per relation of the optimiser workloads.
    rows: usize,
    /// Timed measurements (best one reported).
    measurements: usize,
    /// Plan executions per measurement.
    reps: u32,
}

impl Pr3Scale {
    fn dims(self) -> Dims {
        match self {
            Pr3Scale::Smoke => Dims {
                outer: 30,
                inner: 6,
                chains: 4,
                tower_width: 3,
                rows: 120,
                measurements: 2,
                reps: 2,
            },
            Pr3Scale::Full => Dims {
                outer: 300,
                inner: 30,
                chains: 6,
                tower_width: 8,
                rows: 1_500,
                measurements: 5,
                reps: 6,
            },
        }
    }
}

fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
    ids.iter().map(|&i| AttrId(i)).collect()
}

fn leaf_union(node: NodeId, values: impl Iterator<Item = u64>) -> Union {
    Union::new(node, values.map(|v| Entry::leaf(Value::new(v))).collect())
}

/// Wide-forest workload: the product of `chains` independent two-level
/// chains.  The plan swaps the child above the root in three *different*
/// chains — each step touches one chain, but the step-wise path re-copies
/// the whole forest per step.
fn wide_forest(d: Dims) -> (FRep, FPlan) {
    let mut rep: Option<FRep> = None;
    let mut swap_targets: Vec<NodeId> = Vec::new();
    for chain in 0..d.chains {
        let (ra, rb) = (chain * 2, chain * 2 + 1);
        let edges = vec![DepEdge::new(format!("R{chain}"), attrs(&[ra, rb]), d.outer)];
        let mut tree = FTree::new(edges);
        let root = tree.add_node(attrs(&[ra]), None).unwrap();
        let child = tree.add_node(attrs(&[rb]), Some(root)).unwrap();
        let entries = (0..d.outer)
            .map(|v| Entry {
                value: Value::new(v),
                // Overlapping child ranges keep the regrouped unions
                // non-trivial.
                children: vec![leaf_union(child, v..v + d.inner)],
            })
            .collect();
        let side = FRep::from_parts(tree, vec![Union::new(root, entries)]).unwrap();
        rep = Some(match rep {
            None => side,
            Some(acc) => ops::product(acc, side).unwrap(),
        });
    }
    let rep = rep.expect("at least one chain");
    for chain in 0..3u32 {
        let child_attr = AttrId(chain * 2 + 1);
        swap_targets.push(rep.tree().node_of_attr(child_attr).unwrap());
    }
    let plan = FPlan::new(swap_targets.into_iter().map(FPlanOp::Swap).collect());
    (rep, plan)
}

/// Regrouping cycle: A{0} → B{1} → (C{2}, D{3}) with C dependent on A and D
/// independent; the plan swaps B up, A back up, and B up again — three full
/// regroupings of the same region whose intermediates fusion never
/// materialises.
fn swap_cycle(d: Dims) -> (FRep, FPlan) {
    let edges = vec![
        DepEdge::new("RAB", attrs(&[0, 1]), d.outer),
        DepEdge::new("RAC", attrs(&[0, 2]), d.outer),
        DepEdge::new("RBD", attrs(&[1, 3]), d.inner),
    ];
    let mut tree = FTree::new(edges);
    let a = tree.add_node(attrs(&[0]), None).unwrap();
    let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
    let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
    let d_node = tree.add_node(attrs(&[3]), Some(b)).unwrap();
    let a_entries = (0..d.outer)
        .map(|av| Entry {
            value: Value::new(av),
            children: vec![Union::new(
                b,
                (av..av + d.inner)
                    .map(|bv| Entry {
                        value: Value::new(bv),
                        children: vec![
                            // C is a function of A alone (the independence
                            // the swap operators rely on).
                            leaf_union(c, std::iter::once(av * 1_000)),
                            leaf_union(d_node, std::iter::once(bv)),
                        ],
                    })
                    .collect(),
            )],
        })
        .collect();
    let rep = FRep::from_parts(tree, vec![Union::new(a, a_entries)]).unwrap();
    let plan = FPlan::new(vec![FPlanOp::Swap(b), FPlanOp::Swap(a), FPlanOp::Swap(b)]);
    (rep, plan)
}

/// Normalisation tower: a chain of mutually independent levels (each node's
/// relation is unary), so one `Normalise` expands into a whole sequence of
/// push-ups — all header remaps the fused path applies in one emission.
fn normalise_tower(d: Dims) -> (FRep, FPlan) {
    const LEVELS: u32 = 4;
    let edges = (0..LEVELS)
        .map(|i| DepEdge::new(format!("U{i}"), attrs(&[i]), d.tower_width))
        .collect();
    let mut tree = FTree::new(edges);
    let mut parent: Option<NodeId> = None;
    let mut nodes = Vec::new();
    for i in 0..LEVELS {
        let node = tree.add_node(attrs(&[i]), parent).unwrap();
        nodes.push(node);
        parent = Some(node);
    }
    // Build bottom-up: at every level the same child union hangs under each
    // entry (the levels are independent), which is exactly what push-up
    // factors out.
    let mut child: Option<Union> = None;
    for (depth, &node) in nodes.iter().enumerate().rev() {
        let width = if depth == 0 { d.outer } else { d.tower_width };
        let entries = (0..width)
            .map(|v| Entry {
                value: Value::new(v),
                children: child.iter().cloned().collect(),
            })
            .collect();
        child = Some(Union::new(node, entries));
    }
    let rep = FRep::from_parts(tree, vec![child.expect("at least one level")]).unwrap();
    (rep, FPlan::new(vec![FPlanOp::Normalise]))
}

/// An optimiser-produced plan in the exp2/exp4 mould: a factorised input
/// built from a random join query, then the full-search optimiser's f-plan
/// for `l` follow-up equality conditions.  Seeds are scanned until the plan
/// has at least `min_ops` fusable structural steps.
fn optimiser_workload(d: Dims, l: usize, min_ops: usize, salt: u64) -> (FRep, FPlan) {
    let engine = FdbEngine::new();
    // Bounded scan: if datagen or the optimiser drift so far that no seed
    // qualifies, fail loudly instead of hanging the CI canary.
    for seed in 0u64..10_000 {
        let mut rng = StdRng::seed_from_u64(0x5033_3A44 ^ salt ^ seed);
        let catalog = random_schema(&mut rng, 4, 10);
        let rels: Vec<_> = catalog.rels().collect();
        let db = populate(&mut rng, &catalog, d.rows, 40, ValueDistribution::Uniform);
        let query = random_query(&mut rng, &catalog, &rels, 2);
        let Ok(base) = engine.evaluate_flat(&db, &query) else {
            continue;
        };
        if base.result.size() < d.rows {
            continue;
        }
        let follow = random_followup_equalities(&mut rng, &catalog, &query, l);
        if follow.len() < l {
            continue;
        }
        let Ok(optimised) = ExhaustiveOptimizer::new().optimize(base.result.tree(), &follow) else {
            continue;
        };
        let fusable = optimised
            .plan
            .ops
            .iter()
            .filter(|op| !op.is_barrier())
            .count();
        if fusable < min_ops {
            continue;
        }
        // The plan must execute (some optimiser plans are valid but produce
        // empty results, which is fine for timing).
        let mut probe = base.result.clone();
        if optimised.plan.execute_stepwise(&mut probe).is_err() {
            continue;
        }
        return (base.result, optimised.plan);
    }
    panic!("no seed produced an optimiser plan with ≥ {min_ops} fusable ops (L = {l})");
}

/// Times `run` on fresh clones of `input`, best of `measurements` runs of
/// `reps` executions; returns seconds per execution.
fn time_plan<F: FnMut(&mut FRep)>(input: &FRep, d: Dims, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..d.measurements {
        let mut total = 0.0f64;
        for _ in 0..d.reps {
            let mut rep = input.clone();
            let start = Instant::now();
            run(&mut rep);
            total += start.elapsed().as_secs_f64();
            std::hint::black_box(&rep);
        }
        best = best.min(total / d.reps as f64);
    }
    best
}

/// Measures one plan both ways, checking bit-for-bit identity first.
fn measure_plan(name: &str, input: &FRep, plan: &FPlan, d: Dims) -> PlanRow {
    let mut fused = input.clone();
    let mut stepwise = input.clone();
    plan.execute(&mut fused).expect("fused execution succeeds");
    plan.execute_stepwise(&mut stepwise)
        .expect("step-wise execution succeeds");
    assert!(
        fused.store_identical(&stepwise),
        "{name}: fused and step-wise outputs diverge"
    );

    let fused_seconds = time_plan(input, d, |rep| {
        plan.execute(rep).expect("fused execution succeeds");
    });
    let stepwise_seconds = time_plan(input, d, |rep| {
        plan.execute_stepwise(rep)
            .expect("step-wise execution succeeds");
    });
    PlanRow {
        name: name.to_string(),
        singletons: input.size() as u64,
        plan_ops: plan.len() as u32,
        reps: d.reps,
        fused_seconds,
        stepwise_seconds,
        speedup: stepwise_seconds / fused_seconds.max(1e-12),
    }
}

/// Runs the full PR 3 benchmark at the given scale.
pub fn run(scale: Pr3Scale) -> Pr3Report {
    let d = scale.dims();
    let mut rows = Vec::new();

    let (rep, plan) = wide_forest(d);
    rows.push(measure_plan("wide_forest_3_swaps", &rep, &plan, d));

    let (rep, plan) = swap_cycle(d);
    rows.push(measure_plan("swap_regroup_cycle_k3", &rep, &plan, d));

    let (rep, plan) = normalise_tower(d);
    rows.push(measure_plan("normalise_tower", &rep, &plan, d));

    let (rep, plan) = optimiser_workload(d, 2, 3, 0x2);
    rows.push(measure_plan("exp2_optimiser_plan_L2", &rep, &plan, d));

    let (rep, plan) = optimiser_workload(d, 3, 4, 0x3);
    rows.push(measure_plan("exp4_optimiser_plan_L3", &rep, &plan, d));

    let geomean =
        (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len().max(1) as f64).exp();
    Pr3Report {
        plans: rows,
        fused_speedup_geomean: geomean,
    }
}

/// Serialises the report as JSON (line-oriented, like `BENCH_PR2.json`).
pub fn render_json(report: &Pr3Report) -> String {
    BenchJson::new("pr3-fused-execution")
        .array("plans", &report.plans, |row| {
            format!(
                "{{\"name\": \"{}\", \"singletons\": {}, \"plan_ops\": {}, \"reps\": {}, \
                 \"fused_seconds\": {:.6}, \"stepwise_seconds\": {:.6}, \"speedup\": {:.3}}}",
                row.name,
                row.singletons,
                row.plan_ops,
                row.reps,
                row.fused_seconds,
                row.stepwise_seconds,
                row.speedup,
            )
        })
        .field(
            "fused_speedup_geomean",
            format!("{:.3}", report.fused_speedup_geomean),
        )
        .finish()
}

/// Renders the human-readable table printed by the `experiments` binary.
pub fn render_table(report: &Pr3Report) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<26} {:>12} {:>5} {:>14} {:>14} {:>9}",
        "fused plan", "singletons", "ops", "fused (s)", "step-wise (s)", "speedup"
    )
    .expect("string write");
    for row in &report.plans {
        writeln!(
            out,
            "{:<26} {:>12} {:>5} {:>14.6} {:>14.6} {:>8.2}x",
            row.name,
            row.singletons,
            row.plan_ops,
            row.fused_seconds,
            row.stepwise_seconds,
            row.speedup
        )
        .expect("string write");
    }
    writeln!(
        out,
        "geometric-mean speedup: {:.2}x",
        report.fused_speedup_geomean
    )
    .expect("string write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_runs_and_reports_consistent_rows() {
        let report = run(Pr3Scale::Smoke);
        assert_eq!(report.plans.len(), 5);
        assert!(report.fused_speedup_geomean > 0.0);
        for row in &report.plans {
            assert!(row.fused_seconds > 0.0 && row.stepwise_seconds > 0.0);
            assert!(row.plan_ops >= 1);
        }
        let json = render_json(&report);
        assert!(json.contains("\"fused_speedup_geomean\""));
        assert!(json.contains("wide_forest_3_swaps"));
        let table = render_table(&report);
        assert!(table.contains("geometric-mean speedup"));
    }
}
