//! PR 9 benchmark: ordered enumeration and grouped aggregation heads.
//!
//! PR 9 finishes the 2013 follow-up paper's analytics surface: `ORDER BY`
//! via costed restructure-to-root, multi-attribute / non-root `GROUP BY`,
//! and `DISTINCT` aggregates.  This benchmark prices the two head
//! strategies against their materialising baselines:
//!
//! * **ordered enumeration** — `evaluate_factorised_ordered` (chain swaps
//!   fused into the main plan, priority cursor, per-run tie-breaks)
//!   versus evaluate-then-`materialize_then_sort` (full flat sort of the
//!   output).  The workload set includes a shape where lifting the
//!   ordering attribute would blow up the f-tree's cost, so the planner
//!   honestly refuses and both sides pay the flat sort — that row's
//!   speedup is expected to hover around 1.0 and is committed as-is;
//! * **grouped aggregation** — the factorised grouped fold (on a lifted
//!   chain where the planner accepts, the hash-group fallback where it
//!   refuses) versus plain-iterator grouping over the enumerated tuples.
//!
//! The `experiments bench-pr9` subcommand prints the table and serialises
//! the rows; `--scale smoke` shrinks the inputs so CI can run it as a
//! canary.

use crate::report::BenchJson;
use fdb_common::{AggregateHead, AttrId, Catalog, Query};
use fdb_core::{FactorisedQuery, FdbEngine};
use fdb_frep::aggregate::{self, AggregateKind};
use fdb_frep::{materialize_then_sort, FRep, OrderStrategy};
use fdb_relation::Database;
use std::fmt::Write as _;
use std::time::Instant;

/// One ordered-enumeration measurement.
#[derive(Clone, Debug)]
pub struct OrderedRow {
    /// Workload name (stable across refactors).
    pub name: String,
    /// Tuples in the ordered output.
    pub tuples: u64,
    /// The strategy the costed planner chose (`chain` or `flat_sort`).
    pub strategy: String,
    /// Best wall time of one ordered evaluation through the engine.
    pub ordered_seconds: f64,
    /// Best wall time of evaluate + materialise + full sort.
    pub sort_seconds: f64,
    /// `sort_seconds / ordered_seconds` (below 1.0 means the flat sort
    /// won — committed honestly for the refused-restructure workload).
    pub speedup: f64,
}

/// One grouped-aggregation measurement.
#[derive(Clone, Debug)]
pub struct GroupRow {
    /// Workload name.
    pub name: String,
    /// Number of groups in the result.
    pub groups: u64,
    /// `chain` (grouping ran on a root chain) or `fallback` (hash
    /// grouping over the enumeration).
    pub strategy: String,
    /// Best wall time of one grouped evaluation through the engine.
    pub grouped_seconds: f64,
    /// Best wall time of plain-iterator grouping over the enumerated
    /// tuples.
    pub hash_seconds: f64,
    /// `hash_seconds / grouped_seconds`.
    pub speedup: f64,
}

/// The full PR 9 benchmark result.
#[derive(Clone, Debug)]
pub struct Pr9Report {
    /// Ordered-enumeration rows.
    pub ordered: Vec<OrderedRow>,
    /// Grouped-aggregation rows.
    pub grouped: Vec<GroupRow>,
}

/// Benchmark scale: `smoke` keeps CI runs to a couple of seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pr9Scale {
    /// Tiny inputs, few repetitions — a bit-rot canary, not a measurement.
    Smoke,
    /// The committed `BENCH_PR9.json` numbers.
    Full,
}

/// Workload size knobs.
#[derive(Clone, Copy)]
struct Dims {
    /// Root values of the hierarchical workloads.
    outer: usize,
    /// Children per root value.
    mid: usize,
    /// Grandchildren per child value.
    inner: usize,
    /// Values per independent product branch of the nested workload.
    branch: usize,
    /// Timed measurements (best one reported).
    measurements: usize,
    /// Executions per measurement.
    reps: u32,
}

impl Pr9Scale {
    fn dims(self) -> Dims {
        match self {
            Pr9Scale::Smoke => Dims {
                outer: 4,
                mid: 3,
                inner: 2,
                branch: 3,
                measurements: 3,
                reps: 2,
            },
            Pr9Scale::Full => Dims {
                outer: 32,
                mid: 12,
                inner: 4,
                branch: 8,
                measurements: 7,
                reps: 8,
            },
        }
    }
}

/// Best-of-N wall time of one execution of `work`.
fn best_seconds(d: Dims, mut work: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..d.measurements {
        let start = Instant::now();
        for _ in 0..d.reps {
            work();
        }
        best = best.min(start.elapsed().as_secs_f64() / f64::from(d.reps));
    }
    best
}

/// A hierarchical single-relation representation whose f-tree is a path
/// `a → b → c` (every `b` has one parent `a`, every `c` one parent `b`).
/// Lifting any of its attributes to the root stays within one relation, so
/// the chain planner accepts the restructure for free.
fn path_rep(d: Dims) -> (FRep, AttrId, AttrId, AttrId) {
    let mut catalog = Catalog::new();
    let (r, _) = catalog.add_relation("R", &["a", "b", "c"]);
    let mut db = Database::new(catalog);
    let mut rows = Vec::new();
    for i in 0..d.outer as u64 {
        for j in 0..d.mid as u64 {
            let b = i * d.mid as u64 + j;
            for k in 0..d.inner as u64 {
                rows.push(vec![i, b, b * d.inner as u64 + k]);
            }
        }
    }
    db.insert_raw_rows(r, &rows).expect("pr9 path rows");
    let cat = db.catalog();
    let (a, b, c) = (
        cat.find_attr("R.a").unwrap(),
        cat.find_attr("R.b").unwrap(),
        cat.find_attr("R.c").unwrap(),
    );
    let rep = FdbEngine::new()
        .evaluate_flat(&db, &Query::product(vec![r]))
        .expect("pr9 path workload")
        .result;
    (rep, a, b, c)
}

/// The nested workload: the same hierarchical path `a → b → c` crossed
/// with two independent single-attribute relations (no join conditions),
/// so the f-tree is a forest and the enumerated output is `branch²` times
/// larger than the arena.  The flat-sort baseline pays `N log N` over the
/// *output*; the chain path restructures the (small) arena and sorts only
/// runs of equal prefix.
fn nested_rep(d: Dims) -> (FRep, AttrId, AttrId) {
    let mut catalog = Catalog::new();
    let (r, _) = catalog.add_relation("R", &["a", "b", "c"]);
    let (t1, _) = catalog.add_relation("T1", &["d1"]);
    let (t2, _) = catalog.add_relation("T2", &["e1"]);
    let mut db = Database::new(catalog);
    let mut rows = Vec::new();
    for i in 0..d.outer as u64 {
        for j in 0..d.mid as u64 {
            let b = i * d.mid as u64 + j;
            for k in 0..d.inner as u64 {
                rows.push(vec![i, b, b * d.inner as u64 + k]);
            }
        }
    }
    db.insert_raw_rows(r, &rows).expect("pr9 nested R rows");
    let branch: Vec<Vec<u64>> = (0..d.branch as u64).map(|v| vec![v]).collect();
    db.insert_raw_rows(t1, &branch).expect("pr9 nested T1 rows");
    db.insert_raw_rows(t2, &branch).expect("pr9 nested T2 rows");
    let cat = db.catalog();
    let (a, b) = (cat.find_attr("R.a").unwrap(), cat.find_attr("R.b").unwrap());
    let rep = FdbEngine::new()
        .evaluate_flat(&db, &Query::product(vec![r, t1, t2]))
        .expect("pr9 nested workload")
        .result;
    (rep, a, b)
}

/// The paper's Example-11 shape: a hierarchy `a → b → c` from one relation
/// joined with a second relation `S(a2, e)` on `a = a2`, so the f-tree is
/// `{a,a2} → (b → c, e)`.  Lifting `e` to the root would put both
/// relations on one path and double the tree's cost, so the chain planner
/// refuses and `ORDER BY e` honestly falls back to the flat sort.
fn forked_rep(d: Dims) -> (FRep, AttrId) {
    let mut catalog = Catalog::new();
    let (r, _) = catalog.add_relation("R", &["a", "b", "c"]);
    let (s, _) = catalog.add_relation("S", &["a2", "e"]);
    let mut db = Database::new(catalog);
    let mut r_rows = Vec::new();
    let mut s_rows = Vec::new();
    for i in 0..d.outer as u64 {
        for j in 0..d.mid as u64 {
            let b = i * d.mid as u64 + j;
            for k in 0..d.inner as u64 {
                r_rows.push(vec![i, b, b * d.inner as u64 + k]);
            }
        }
        for k in 0..4u64 {
            // `e` values deliberately interleave across `a` parents so an
            // ordered-by-`e` output cannot come off any one branch.
            s_rows.push(vec![i, k * d.outer as u64 + i]);
        }
    }
    db.insert_raw_rows(r, &r_rows).expect("pr9 fork R rows");
    db.insert_raw_rows(s, &s_rows).expect("pr9 fork S rows");
    let cat = db.catalog();
    let a = cat.find_attr("R.a").unwrap();
    let a2 = cat.find_attr("S.a2").unwrap();
    let e = cat.find_attr("S.e").unwrap();
    let rep = FdbEngine::new()
        .evaluate_flat(&db, &Query::product(vec![r, s]).with_equality(a, a2))
        .expect("pr9 fork workload")
        .result;
    (rep, e)
}

/// Measures one ordered workload: the engine's ordered path (chain swaps
/// fused into the plan where accepted) against evaluate + flat sort.
fn measure_ordered(
    name: &str,
    rep: &FRep,
    order_by: &[AttrId],
    expect: OrderStrategy,
    d: Dims,
) -> OrderedRow {
    let engine = FdbEngine::new();
    let body = FactorisedQuery::default();

    // Correctness and strategy pin before any timing.
    let ordered = engine
        .evaluate_factorised_ordered(rep, &body, order_by)
        .expect("ordered evaluation");
    assert_eq!(
        ordered.strategy, expect,
        "{name}: the costed planner changed its decision"
    );
    let baseline = {
        let out = engine.evaluate_factorised(rep, &body).expect("baseline");
        materialize_then_sort(&out.result, order_by).expect("baseline sort")
    };
    assert_eq!(ordered.rows, baseline, "{name}: ordered output diverged");

    let ordered_seconds = best_seconds(d, || {
        std::hint::black_box(
            engine
                .evaluate_factorised_ordered(rep, &body, order_by)
                .expect("ordered evaluation"),
        );
    });
    let sort_seconds = best_seconds(d, || {
        let out = engine.evaluate_factorised(rep, &body).expect("baseline");
        std::hint::black_box(materialize_then_sort(&out.result, order_by).expect("baseline sort"));
    });
    OrderedRow {
        name: name.to_string(),
        tuples: ordered.rows.len() as u64,
        strategy: match ordered.strategy {
            OrderStrategy::Chain => "chain".into(),
            OrderStrategy::FlatSort => "flat_sort".into(),
        },
        ordered_seconds,
        sort_seconds,
        speedup: sort_seconds / ordered_seconds.max(1e-12),
    }
}

/// Measures one grouped workload: the engine's grouped head against
/// plain-iterator grouping over the enumerated tuples.
fn measure_grouped(name: &str, rep: &FRep, group_by: &[AttrId], d: Dims) -> GroupRow {
    let engine = FdbEngine::new();
    let body = FactorisedQuery::default();
    let mut head = AggregateHead::count();
    for &g in group_by {
        head = head.grouped_by(g);
    }

    let out = engine
        .evaluate_factorised_aggregate(rep, &body, &head)
        .expect("grouped evaluation");
    let oracle =
        aggregate::by_enumeration(rep, AggregateKind::Count, group_by).expect("hash-group oracle");
    assert_eq!(out.result, oracle, "{name}: grouped output diverged");
    let groups = match &out.result {
        fdb_frep::aggregate::AggregateResult::Groups(rows) => rows.len() as u64,
        fdb_frep::aggregate::AggregateResult::Scalar(_) => 0,
    };
    let strategy = if out.stats.chain_heads > 0 {
        "chain"
    } else {
        "fallback"
    };

    let grouped_seconds = best_seconds(d, || {
        std::hint::black_box(
            engine
                .evaluate_factorised_aggregate(rep, &body, &head)
                .expect("grouped evaluation"),
        );
    });
    let hash_seconds = best_seconds(d, || {
        std::hint::black_box(
            aggregate::by_enumeration(rep, AggregateKind::Count, group_by)
                .expect("hash-group oracle"),
        );
    });
    GroupRow {
        name: name.to_string(),
        groups,
        strategy: strategy.into(),
        grouped_seconds,
        hash_seconds,
        speedup: hash_seconds / grouped_seconds.max(1e-12),
    }
}

/// Runs the full PR 9 benchmark at the given scale.
pub fn run(scale: Pr9Scale) -> Pr9Report {
    let d = scale.dims();
    let (path, _a, b, c) = path_rep(d);
    let (nested, _na, nb) = nested_rep(d);
    let (fork, e) = forked_rep(d);

    let ordered = vec![
        // The headline row: the ordering attribute sits mid-path in a rep
        // whose output is `branch²` times larger than its arena.  The
        // planner lifts `b` with swaps (free within one relation), the
        // priority cursor emits runs already grouped by the sort key, and
        // only those short runs need tie-break sorting — while the
        // baseline pays one global sort over the whole enumerated output.
        measure_ordered(
            "nested_order_by_mid",
            &nested,
            &[nb],
            OrderStrategy::Chain,
            d,
        ),
        // Honest row: on a single flat relation the output is exactly as
        // large as the arena, so the restructure pass costs about as much
        // as the sort it saves — expect speedup ≈ 1.0.
        measure_ordered("path_order_by_mid", &path, &[b], OrderStrategy::Chain, d),
        // Honest row: lifting `e` across the join would double the tree's
        // cost, the planner refuses, and both sides pay a full sort —
        // expect speedup ≈ 1.0.
        measure_ordered(
            "fork_order_by_far_branch",
            &fork,
            &[e],
            OrderStrategy::FlatSort,
            d,
        ),
    ];

    let grouped = vec![
        // Grouping the nested shape: the fold runs over the (small) arena
        // while the hash baseline enumerates the full `branch²`-times
        // larger output.
        measure_grouped("nested_group_by_mid", &nested, &[nb], d),
        // Non-root grouping satisfied by lifting the attribute's node.
        measure_grouped("path_group_by_mid", &path, &[b], d),
        // A two-attribute path group: both nodes end up a root chain, but
        // every group is a single tuple, so the fold's per-group overhead
        // loses to the hash — committed honestly.
        measure_grouped("path_group_by_pair", &path, &[b, c], d),
        // Grouping on the far branch: the lift is refused, the head runs
        // on the hash-group fallback.
        measure_grouped("fork_group_by_far_branch", &fork, &[e], d),
    ];

    Pr9Report { ordered, grouped }
}

/// Serialises the report as JSON (line-oriented, like `BENCH_PR8.json`).
pub fn render_json(report: &Pr9Report) -> String {
    BenchJson::new("pr9-analytics-heads")
        .array("ordered", &report.ordered, |row| {
            format!(
                "{{\"name\": \"{}\", \"tuples\": {}, \"strategy\": \"{}\", \
                 \"ordered_seconds\": {:.6}, \"sort_seconds\": {:.6}, \
                 \"speedup\": {:.3}}}",
                row.name,
                row.tuples,
                row.strategy,
                row.ordered_seconds,
                row.sort_seconds,
                row.speedup,
            )
        })
        .array("grouped", &report.grouped, |row| {
            format!(
                "{{\"name\": \"{}\", \"groups\": {}, \"strategy\": \"{}\", \
                 \"grouped_seconds\": {:.6}, \"hash_seconds\": {:.6}, \
                 \"speedup\": {:.3}}}",
                row.name,
                row.groups,
                row.strategy,
                row.grouped_seconds,
                row.hash_seconds,
                row.speedup,
            )
        })
        .finish()
}

/// Renders the human-readable table printed by the `experiments` binary.
pub fn render_table(report: &Pr9Report) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<26} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "ORDER BY", "tuples", "strategy", "ordered (s)", "sort (s)", "speedup"
    )
    .expect("string write");
    for row in &report.ordered {
        writeln!(
            out,
            "{:<26} {:>10} {:>10} {:>12.6} {:>12.6} {:>7.2}x",
            row.name, row.tuples, row.strategy, row.ordered_seconds, row.sort_seconds, row.speedup
        )
        .expect("string write");
    }
    writeln!(
        out,
        "\n{:<26} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "GROUP BY", "groups", "strategy", "grouped (s)", "hash (s)", "speedup"
    )
    .expect("string write");
    for row in &report.grouped {
        writeln!(
            out,
            "{:<26} {:>10} {:>10} {:>12.6} {:>12.6} {:>7.2}x",
            row.name, row.groups, row.strategy, row.grouped_seconds, row.hash_seconds, row.speedup
        )
        .expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_runs_and_pins_the_strategy_split() {
        let report = run(Pr9Scale::Smoke);
        assert_eq!(report.ordered.len(), 3);
        assert_eq!(report.grouped.len(), 4);
        let strategies: Vec<&str> = report.ordered.iter().map(|r| r.strategy.as_str()).collect();
        assert!(strategies.contains(&"chain") && strategies.contains(&"flat_sort"));
        let strategies: Vec<&str> = report.grouped.iter().map(|r| r.strategy.as_str()).collect();
        assert!(strategies.contains(&"chain") && strategies.contains(&"fallback"));
        let json = render_json(&report);
        assert!(json.contains("\"ordered\"") && json.contains("\"grouped\""));
        assert!(!render_table(&report).is_empty());
    }
}
