//! PR 8 benchmark: snapshot durability and hot-swap costs.
//!
//! PR 8 adds self-verifying snapshots (`fdb_core::snapshot`) and atomic
//! hot swap of live representations with epoch-correct plan-cache
//! invalidation (`FdbServer::replace`).  This benchmark prices the four
//! operations the design paid for:
//!
//! * **snapshot save / load** — full file-path throughput in MB/s:
//!   encode + atomic write, and read + checksum + structural
//!   re-validation + arena rebuild;
//! * **verification overhead** — the in-memory decode with the mandatory
//!   structural validator versus the raw unverified decode.  The
//!   committed acceptance bound is `verify_overhead <= 1.15` in
//!   `BENCH_PR8.json`: integrity checking must stay within 15% of the
//!   blind deserialiser;
//! * **hot-swap latency** — the wall time of `FdbServer::replace` while
//!   1/2/4/8 worker threads keep serving a request stream against the
//!   slot being swapped;
//! * **invalidation cost** — `replace` against a plan cache warmed with
//!   many distinct query shapes keyed on the outgoing tree, i.e. the
//!   price of the targeted fingerprint scan.
//!
//! The `experiments bench-pr8` subcommand prints the table and
//! serialises the rows; `--scale smoke` shrinks the inputs so CI can run
//! it as a canary.

use crate::report::BenchJson;
use fdb_common::{ComparisonOp, ConstSelection, Value};
use fdb_core::{
    load_rep, save_rep, FactorisedQuery, FdbEngine, FdbServer, ServeRequest, SharedDatabase,
};
use fdb_datagen::{populate, random_query, random_schema, ValueDistribution};
use fdb_frep::snapshot::{decode_frep, decode_frep_unverified, encode_frep};
use fdb_frep::FRep;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One file-path throughput measurement.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Operation name (stable across refactors).
    pub name: String,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// Timed repetitions per measurement.
    pub reps: u32,
    /// Best wall time of one operation.
    pub seconds: f64,
    /// Throughput derived from `bytes / seconds`.
    pub mb_per_s: f64,
}

/// Hot-swap latency at one worker-thread count.
#[derive(Clone, Debug)]
pub struct SwapRow {
    /// Worker threads serving the concurrent request stream.
    pub threads: usize,
    /// Best wall time of one `FdbServer::replace` under that load.
    pub swap_seconds: f64,
}

/// The full PR 8 benchmark result.
#[derive(Clone, Debug)]
pub struct Pr8Report {
    /// Singleton count of the representation being snapshotted.
    pub singletons: u64,
    /// File-path save/load throughput rows.
    pub throughput: Vec<ThroughputRow>,
    /// Best in-memory decode time with the structural validator.
    pub verified_seconds: f64,
    /// Best in-memory decode time without it.
    pub unverified_seconds: f64,
    /// `verified_seconds / unverified_seconds` (the ≤ 1.15 acceptance
    /// bound).
    pub verify_overhead: f64,
    /// Hot-swap latency under load, one row per thread count.
    pub swap_rows: Vec<SwapRow>,
    /// Distinct plans warmed into the cache before each timed
    /// invalidation.
    pub invalidation_plans: usize,
    /// Best wall time of one `replace` against that warm cache (swap +
    /// targeted fingerprint scan).
    pub invalidation_seconds: f64,
}

/// Benchmark scale: `smoke` keeps CI runs to a couple of seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pr8Scale {
    /// Tiny inputs, few repetitions — a bit-rot canary, not a measurement.
    Smoke,
    /// The committed `BENCH_PR8.json` numbers.
    Full,
}

/// Workload size knobs.
#[derive(Clone, Copy)]
struct Dims {
    /// Rows per relation of the generated database.
    rows: usize,
    /// Timed measurements (best one reported).
    measurements: usize,
    /// Executions per measurement.
    reps: u32,
    /// Distinct query shapes warmed before the invalidation timing.
    shapes: usize,
    /// Requests per concurrent serving batch during the swap timing.
    batch: usize,
}

impl Pr8Scale {
    fn dims(self) -> Dims {
        match self {
            Pr8Scale::Smoke => Dims {
                rows: 80,
                measurements: 3,
                reps: 3,
                shapes: 6,
                batch: 8,
            },
            Pr8Scale::Full => Dims {
                rows: 2_000,
                measurements: 9,
                reps: 20,
                shapes: 24,
                batch: 64,
            },
        }
    }
}

/// Best-of-N wall time of one execution of `work`.
fn best_seconds(d: Dims, mut work: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..d.measurements {
        let start = Instant::now();
        for _ in 0..d.reps {
            work();
        }
        best = best.min(start.elapsed().as_secs_f64() / d.reps as f64);
    }
    best
}

/// A seeded representation large enough that per-record codec work (not
/// fixed per-file cost) dominates the measurement.
fn workload(d: Dims) -> FRep {
    let engine = FdbEngine::new();
    for seed in 0u64..10_000 {
        let mut rng = StdRng::seed_from_u64(0x00B8_60B8 ^ seed);
        let catalog = random_schema(&mut rng, 3, 7);
        let rels: Vec<_> = catalog.rels().collect();
        let db = populate(&mut rng, &catalog, d.rows, 12, ValueDistribution::Uniform);
        let query = random_query(&mut rng, &catalog, &rels, 1);
        let Ok(base) = engine.evaluate_flat(&db, &query) else {
            continue;
        };
        if base.result.size() < d.rows * 2 || base.result.visible_attrs().len() < 2 {
            continue;
        }
        return base.result;
    }
    panic!("no pr8 workload found in 10k seeds");
}

/// A scratch file path under the system temp directory.
fn scratch_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fdb-bench-pr8-{}-{tag}.fdbs", std::process::id()))
}

/// A selection request that keeps most of the data alive (so serving does
/// real evaluation work while the swap is timed).
fn serving_request(id: fdb_core::RepId, rep: &FRep) -> ServeRequest {
    let attr = rep.visible_attrs()[0];
    let query = FactorisedQuery::default().with_const_selection(ConstSelection {
        attr,
        op: ComparisonOp::Ge,
        value: Value::new(2),
    });
    ServeRequest::new(id, query, None)
}

/// Distinct query shapes, each occupying its own plan-cache entry keyed
/// on the current tree.  Shape `i` is a chain of `i + 1` never-dropping
/// selections, so the skeletons differ in length no matter how many
/// attributes the representation exposes.
fn shape_queries(rep: &FRep, shapes: usize) -> Vec<FactorisedQuery> {
    let attrs = rep.visible_attrs();
    (0..shapes)
        .map(|i| {
            let mut query = FactorisedQuery::default();
            for j in 0..=i {
                query = query.with_const_selection(ConstSelection {
                    attr: attrs[j % attrs.len()],
                    op: ComparisonOp::Ge,
                    value: Value::new(0),
                });
            }
            query
        })
        .collect()
}

/// An alternate representation over a *different* f-tree (a projection),
/// so swapping between the two always invalidates the outgoing tree's
/// plans.
fn alternate_rep(engine: &FdbEngine, rep: &FRep) -> FRep {
    let attrs = rep.visible_attrs();
    let keep: Vec<_> = attrs[..attrs.len() - 1].to_vec();
    engine
        .evaluate_factorised(rep, &FactorisedQuery::default().with_projection(keep))
        .expect("projection workload")
        .result
}

/// Runs the full PR 8 benchmark at the given scale.
pub fn run(scale: Pr8Scale) -> Pr8Report {
    let d = scale.dims();
    let engine = FdbEngine::new();
    let rep = workload(d);
    let singletons = rep.size() as u64;
    let bytes = encode_frep(&rep);
    let snapshot_bytes = bytes.len() as u64;
    let mb = snapshot_bytes as f64 / (1024.0 * 1024.0);

    // File-path throughput: encode + atomic write, read + verify + rebuild.
    let path = scratch_file("throughput");
    let save = best_seconds(d, || save_rep(&rep, &path).expect("bench save"));
    {
        let loaded = load_rep(&path).expect("bench load");
        assert!(loaded.store_identical(&rep), "round trip diverged");
    }
    let load = best_seconds(d, || {
        load_rep(&path).expect("bench load");
    });
    let _ = std::fs::remove_file(&path);
    let throughput = vec![
        ThroughputRow {
            name: "snapshot_save".into(),
            bytes: snapshot_bytes,
            reps: d.reps,
            seconds: save,
            mb_per_s: mb / save,
        },
        ThroughputRow {
            name: "snapshot_load".into(),
            bytes: snapshot_bytes,
            reps: d.reps,
            seconds: load,
            mb_per_s: mb / load,
        },
    ];

    // Verification overhead: the in-memory decode with and without the
    // mandatory structural validator.
    {
        let verified = decode_frep(&bytes).expect("verified decode");
        let unverified = decode_frep_unverified(&bytes).expect("unverified decode");
        assert!(
            verified.store_identical(&unverified),
            "decoders diverged on the same bytes"
        );
    }
    let verified_seconds = best_seconds(d, || {
        decode_frep(&bytes).expect("verified decode");
    });
    let unverified_seconds = best_seconds(d, || {
        decode_frep_unverified(&bytes).expect("unverified decode");
    });
    let verify_overhead = verified_seconds / unverified_seconds;

    // Hot-swap latency while worker threads keep serving the slot.
    let rep_b = alternate_rep(&engine, &rep);
    let mut swap_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut shared = SharedDatabase::new();
        let id = shared
            .insert("bench", rep.clone())
            .expect("fresh database, unique name");
        let server = FdbServer::new(FdbEngine::new(), Arc::new(shared), threads);
        let request = serving_request(id, &rep);
        server.serve_one(&request).expect("cache warm-up");
        let stop = AtomicBool::new(false);
        let mut best = f64::INFINITY;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    for outcome in server.serve_batch(vec![request.clone(); d.batch]) {
                        outcome.expect("background serve");
                    }
                }
            });
            let mut next = rep_b.clone();
            for _ in 0..d.measurements {
                std::thread::sleep(std::time::Duration::from_micros(200));
                let start = Instant::now();
                let old = server.replace(id, next).expect("bench swap");
                best = best.min(start.elapsed().as_secs_f64());
                next = (*old).clone();
            }
            stop.store(true, Ordering::Relaxed);
        });
        swap_rows.push(SwapRow {
            threads,
            swap_seconds: best,
        });
    }

    // Invalidation cost: replace against a cache warmed with many distinct
    // shapes keyed on the outgoing tree.
    let mut shared = SharedDatabase::new();
    let id = shared
        .insert("bench", rep.clone())
        .expect("fresh database, unique name");
    let server = FdbServer::new(FdbEngine::new(), Arc::new(shared), 1);
    let mut invalidation_seconds = f64::INFINITY;
    let mut next = rep_b.clone();
    for round in 0..d.measurements {
        let current = server.db().get(id).expect("slot exists");
        for query in shape_queries(&current, d.shapes) {
            server
                .serve_one(&ServeRequest::new(id, query, None))
                .expect("shape warm-up");
        }
        assert!(
            server.cache().len() >= d.shapes,
            "warm-up cached fewer plans than shapes"
        );
        let before = server.cache().invalidations();
        let start = Instant::now();
        let old = server.replace(id, next).expect("bench invalidation");
        invalidation_seconds = invalidation_seconds.min(start.elapsed().as_secs_f64());
        assert!(
            server.cache().invalidations() >= before + d.shapes as u64,
            "round {round}: replace did not drop the warmed plans"
        );
        next = (*old).clone();
    }

    Pr8Report {
        singletons,
        throughput,
        verified_seconds,
        unverified_seconds,
        verify_overhead,
        swap_rows,
        invalidation_plans: d.shapes,
        invalidation_seconds,
    }
}

/// Serialises the report as JSON (line-oriented, like `BENCH_PR7.json`).
pub fn render_json(report: &Pr8Report) -> String {
    BenchJson::new("pr8-snapshot-hot-swap")
        .field("singletons", report.singletons)
        .array("throughput", &report.throughput, |row| {
            format!(
                "{{\"name\": \"{}\", \"bytes\": {}, \"reps\": {}, \
                 \"seconds\": {:.6}, \"mb_per_s\": {:.2}}}",
                row.name, row.bytes, row.reps, row.seconds, row.mb_per_s,
            )
        })
        .field(
            "verified_seconds",
            format!("{:.6}", report.verified_seconds),
        )
        .field(
            "unverified_seconds",
            format!("{:.6}", report.unverified_seconds),
        )
        .field("verify_overhead", format!("{:.4}", report.verify_overhead))
        .array("hot_swap", &report.swap_rows, |row| {
            format!(
                "{{\"threads\": {}, \"swap_seconds\": {:.6}}}",
                row.threads, row.swap_seconds,
            )
        })
        .field("invalidation_plans", report.invalidation_plans)
        .field(
            "invalidation_seconds",
            format!("{:.6}", report.invalidation_seconds),
        )
        .finish()
}

/// Renders the human-readable table printed by the `experiments` binary.
pub fn render_table(report: &Pr8Report) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:>12} {:>6} {:>14} {:>12}",
        "snapshot path", "bytes", "reps", "best (s)", "MB/s"
    )
    .expect("string write");
    for row in &report.throughput {
        writeln!(
            out,
            "{:<16} {:>12} {:>6} {:>14.6} {:>12.2}",
            row.name, row.bytes, row.reps, row.seconds, row.mb_per_s
        )
        .expect("string write");
    }
    writeln!(
        out,
        "\ndecode verified {:.6} s vs unverified {:.6} s: overhead {:.2}% (bound: +15%)",
        report.verified_seconds,
        report.unverified_seconds,
        (report.verify_overhead - 1.0) * 100.0
    )
    .expect("string write");
    writeln!(out, "\n{:<10} {:>18}", "hot swap", "latency under load").expect("string write");
    for row in &report.swap_rows {
        writeln!(
            out,
            "{:<10} {:>16.1} µs",
            format!("{} thr", row.threads),
            row.swap_seconds * 1e6
        )
        .expect("string write");
    }
    writeln!(
        out,
        "\ninvalidation of {} cached plans: {:.1} µs",
        report.invalidation_plans,
        report.invalidation_seconds * 1e6
    )
    .expect("string write");
    out
}
