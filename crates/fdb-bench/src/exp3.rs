//! Experiment 3 (Figure 7): query evaluation on flat data.
//!
//! Two workloads are swept, exactly as in the paper:
//!
//! * **Scaling workload** (left and middle columns of Figure 7): three
//!   ternary relations of `N` tuples each, values drawn from `[1, 100]`
//!   uniformly or Zipf-distributed, queries with `K ∈ {2, 3, 4}` equality
//!   selections.  Reported: result sizes (number of data elements for the
//!   flat engines, number of singletons for FDB) and evaluation times.
//! * **Combinatorial workload** (right column): `R = 4` relations over
//!   `A = 10` attributes — two binary relations of 8² tuples and two ternary
//!   relations of 8³ tuples, values from `[1, 20]` — with `K = 1..8`
//!   equality selections.  FDB factorises the up-to-hundreds-of-millions of
//!   data values into a few thousand singletons.
//!
//! The flat baseline is the RDB engine; runs that exceed the timeout are
//! reported as such (the paper uses a 100-second timeout and omits those
//! points from its plots).

use crate::Scale;
use fdb_common::{Query, RelId};
use fdb_core::FdbEngine;
use fdb_datagen::{
    combinatorial_database, populate, random_query, random_schema, ValueDistribution,
};
use fdb_relation::{Database, EvalLimits, RdbEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Outcome of one engine run: either a measurement or a timeout.
#[derive(Clone, Debug)]
pub enum Measurement {
    /// The run finished within the limits.
    Finished {
        /// Evaluation wall-clock time.
        time: Duration,
        /// Result size — data elements for flat engines, singletons for FDB.
        size: u64,
        /// Number of result tuples.
        tuples: u128,
    },
    /// The run exceeded the timeout or tuple budget.
    TimedOut,
}

impl Measurement {
    /// The measured time, if the run finished.
    pub fn time(&self) -> Option<Duration> {
        match self {
            Measurement::Finished { time, .. } => Some(*time),
            Measurement::TimedOut => None,
        }
    }

    /// The measured size, if the run finished.
    pub fn size(&self) -> Option<u64> {
        match self {
            Measurement::Finished { size, .. } => Some(*size),
            Measurement::TimedOut => None,
        }
    }
}

/// One measurement point of Experiment 3.
#[derive(Clone, Debug)]
pub struct Exp3Row {
    /// Which workload the row belongs to (`"uniform"`, `"zipf"`,
    /// `"combinatorial-u"`, `"combinatorial-z"`).
    pub workload: String,
    /// Tuples per relation `N` (for the scaling workload) or total input
    /// tuples (combinatorial workload).
    pub n: usize,
    /// Number of equality selections `K`.
    pub equalities: usize,
    /// FDB measurement (size = singletons).
    pub fdb: Measurement,
    /// RDB measurement (size = data elements).
    pub rdb: Measurement,
}

/// Configuration of the Experiment 3 sweep.
#[derive(Clone, Debug)]
pub struct Exp3Config {
    /// Relation sizes `N` swept for the scaling workload.
    pub relation_sizes: Vec<usize>,
    /// Equality counts swept for the scaling workload.
    pub equalities: Vec<usize>,
    /// Equality counts swept for the combinatorial workload.
    pub combinatorial_equalities: Vec<usize>,
    /// Timeout applied to the flat baseline (and to FDB, defensively).
    pub timeout: Duration,
    /// Tuple budget applied to the flat baseline so sweeps cannot exhaust
    /// memory (the paper's testbed had 32 GB; this container does not).
    pub max_flat_tuples: usize,
}

impl Exp3Config {
    /// Configuration appropriate for the given scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Exp3Config {
                relation_sizes: vec![1_000, 3_000, 10_000],
                equalities: vec![2, 3, 4],
                combinatorial_equalities: (1..=6).collect(),
                timeout: Duration::from_secs(10),
                max_flat_tuples: 20_000_000,
            },
            Scale::Full => Exp3Config {
                relation_sizes: vec![1_000, 3_000, 10_000, 30_000, 100_000],
                equalities: vec![2, 3, 4],
                combinatorial_equalities: (1..=8).collect(),
                timeout: Duration::from_secs(60),
                max_flat_tuples: 50_000_000,
            },
        }
    }
}

fn measure_fdb(db: &Database, query: &Query) -> Measurement {
    let start = Instant::now();
    match FdbEngine::new().evaluate_flat(db, query) {
        Ok(out) => Measurement::Finished {
            time: start.elapsed(),
            size: out.stats.result_size as u64,
            tuples: out.stats.result_tuples,
        },
        Err(_) => Measurement::TimedOut,
    }
}

fn measure_rdb(db: &Database, query: &Query, config: &Exp3Config) -> Measurement {
    let engine = RdbEngine::new().with_limits(
        EvalLimits::unlimited()
            .with_timeout(config.timeout)
            .with_max_tuples(config.max_flat_tuples),
    );
    let start = Instant::now();
    match engine.evaluate(db, query) {
        Ok(rel) => Measurement::Finished {
            time: start.elapsed(),
            size: rel.data_element_count() as u64,
            tuples: rel.len() as u128,
        },
        Err(_) => Measurement::TimedOut,
    }
}

/// Runs the scaling workload (left/middle columns of Figure 7).
pub fn run_scaling(config: &Exp3Config) -> Vec<Exp3Row> {
    let mut rng = StdRng::seed_from_u64(0xFDB3);
    let mut rows = Vec::new();
    for distribution in [ValueDistribution::Uniform, ValueDistribution::Zipf(1.0)] {
        let workload = match distribution {
            ValueDistribution::Uniform => "uniform",
            ValueDistribution::Zipf(_) => "zipf",
        };
        let catalog = random_schema(&mut rng, 3, 9);
        let rels: Vec<RelId> = catalog.rels().collect();
        for &n in &config.relation_sizes {
            let db = populate(&mut rng, &catalog, n, 100, distribution);
            for &k in &config.equalities {
                let query = random_query(&mut rng, &catalog, &rels, k);
                rows.push(Exp3Row {
                    workload: workload.to_string(),
                    n,
                    equalities: k,
                    fdb: measure_fdb(&db, &query),
                    rdb: measure_rdb(&db, &query, config),
                });
            }
        }
    }
    rows
}

/// Runs the combinatorial workload (right column of Figure 7).
pub fn run_combinatorial(config: &Exp3Config) -> Vec<Exp3Row> {
    let mut rng = StdRng::seed_from_u64(0xFDB3C);
    let mut rows = Vec::new();
    for distribution in [ValueDistribution::Uniform, ValueDistribution::Zipf(1.0)] {
        let workload = match distribution {
            ValueDistribution::Uniform => "combinatorial-u",
            ValueDistribution::Zipf(_) => "combinatorial-z",
        };
        let db = combinatorial_database(&mut rng, distribution);
        let catalog = db.catalog().clone();
        let rels: Vec<RelId> = catalog.rels().collect();
        let n = db.total_tuples();
        for &k in &config.combinatorial_equalities {
            let query = random_query(&mut rng, &catalog, &rels, k);
            rows.push(Exp3Row {
                workload: workload.to_string(),
                n,
                equalities: k,
                fdb: measure_fdb(&db, &query),
                rdb: measure_rdb(&db, &query, config),
            });
        }
    }
    rows
}

/// Runs both workloads.
pub fn run(scale: Scale) -> Vec<Exp3Row> {
    let config = Exp3Config::for_scale(scale);
    let mut rows = run_scaling(&config);
    rows.extend(run_combinatorial(&config));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorised_results_are_never_larger_than_flat_ones() {
        let config = Exp3Config {
            relation_sizes: vec![300],
            equalities: vec![2],
            combinatorial_equalities: vec![2],
            timeout: Duration::from_secs(30),
            max_flat_tuples: 5_000_000,
        };
        let rows = run_scaling(&config);
        assert_eq!(rows.len(), 2); // uniform + zipf
        for row in &rows {
            let (Some(fdb_size), Some(rdb_size)) = (row.fdb.size(), row.rdb.size()) else {
                panic!("tiny configurations must not time out");
            };
            assert!(
                fdb_size <= rdb_size,
                "factorised size {fdb_size} exceeded flat size {rdb_size}"
            );
            // Both engines agree on the number of result tuples.
            if let (
                Measurement::Finished { tuples: ft, .. },
                Measurement::Finished { tuples: rt, .. },
            ) = (&row.fdb, &row.rdb)
            {
                assert_eq!(ft, rt, "tuple counts diverge on {}", row.workload);
            }
        }
    }

    #[test]
    fn combinatorial_workload_factorises_dramatically() {
        let config = Exp3Config {
            relation_sizes: vec![],
            equalities: vec![],
            combinatorial_equalities: vec![1, 2],
            timeout: Duration::from_secs(30),
            max_flat_tuples: 20_000_000,
        };
        let rows = run_combinatorial(&config);
        for row in rows.iter().filter(|r| r.workload == "combinatorial-u") {
            let fdb_size = row.fdb.size().expect("FDB never times out here");
            // FDB factorises the combinatorial result into a few thousand
            // singletons (the paper reports < 4k for all K).
            assert!(
                fdb_size < 10_000,
                "K={} produced {} singletons",
                row.equalities,
                fdb_size
            );
            if let Some(rdb_size) = row.rdb.size() {
                assert!(
                    rdb_size > fdb_size,
                    "flat result must dwarf the factorised one"
                );
            }
        }
    }
}
