//! Criterion benchmark for Experiment 2 (Figures 6 and 9): optimising
//! queries over factorised data with the full-search and greedy optimisers.
//!
//! Input f-trees are optimal trees of `K`-equality queries over the paper's
//! `R = 4`, `A = 10` schema; the benchmark measures the time to optimise `L`
//! additional equalities with each optimiser (the 2–3 orders of magnitude
//! gap of Figure 9 shows up directly in the reported times).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdb_common::RelId;
use fdb_datagen::{random_followup_equalities, random_query, random_schema};
use fdb_plan::{optimal_ftree, ExhaustiveOptimizer, GreedyOptimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_optimisers(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp2_fplan_optimisation_R4_A10");
    group.sample_size(10);
    for &(k, l) in &[(2usize, 2usize), (4, 2), (2, 4), (6, 3)] {
        let mut rng = StdRng::seed_from_u64(2_000 + (k * 10 + l) as u64);
        let catalog = random_schema(&mut rng, 4, 10);
        let rels: Vec<RelId> = catalog.rels().collect();
        let base = random_query(&mut rng, &catalog, &rels, k);
        let input_tree = optimal_ftree(&catalog, &base, |_| 1)
            .expect("base tree")
            .tree;
        let follow = random_followup_equalities(&mut rng, &catalog, &base, l);
        if follow.len() < l {
            continue;
        }

        group.bench_with_input(
            BenchmarkId::new("full_search", format!("K{k}_L{l}")),
            &(input_tree.clone(), follow.clone()),
            |b, (tree, eqs)| {
                b.iter(|| {
                    ExhaustiveOptimizer::new()
                        .optimize(tree, eqs)
                        .expect("optimises")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("K{k}_L{l}")),
            &(input_tree, follow),
            |b, (tree, eqs)| {
                b.iter(|| {
                    GreedyOptimizer::new()
                        .optimize(tree, eqs)
                        .expect("optimises")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optimisers);
criterion_main!(benches);
