//! Criterion benchmark for Experiment 1 (Figure 5): finding an optimal
//! f-tree for random equi-join queries on flat data.
//!
//! The benchmark sweeps the number of relations `R` and equalities `K` on
//! the paper's `A = 40`-attribute schema and measures the optimiser alone
//! (data is irrelevant to this experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdb_common::RelId;
use fdb_datagen::{random_query, random_schema};
use fdb_plan::optimal_ftree;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_optimal_ftree(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp1_optimal_ftree_A40");
    group.sample_size(10);
    for &relations in &[2usize, 4, 6, 8] {
        for &equalities in &[2usize, 4, 6] {
            let mut rng = StdRng::seed_from_u64(1_000 + (relations * 10 + equalities) as u64);
            let catalog = random_schema(&mut rng, relations, 40);
            let rels: Vec<RelId> = catalog.rels().collect();
            let query = random_query(&mut rng, &catalog, &rels, equalities);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("R{relations}_K{equalities}")),
                &(catalog, query),
                |b, (catalog, query)| {
                    b.iter(|| optimal_ftree(catalog, query, |_| 1).expect("search succeeds"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_optimal_ftree);
criterion_main!(benches);
