//! Criterion benchmark for Experiment 4 (Figure 8): evaluating follow-up
//! equality selections on factorised versus flat previous results.
//!
//! The input is the result of a `K`-equality query over the combinatorial
//! dataset; FDB evaluates `L` further equalities on the factorised form
//! (restructuring it as needed), RDB scans the materialised flat relation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdb_common::RelId;
use fdb_core::{FactorisedQuery, FdbEngine};
use fdb_datagen::{
    combinatorial_database, random_followup_equalities, random_query, ValueDistribution,
};
use fdb_relation::{EvalLimits, RdbEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_factorised_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp4_followup_on_previous_results");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4_000);
    let db = combinatorial_database(&mut rng, ValueDistribution::Uniform);
    let catalog = db.catalog().clone();
    let rels: Vec<RelId> = catalog.rels().collect();
    let engine = FdbEngine::new();

    for &(k, l) in &[(4usize, 1usize), (4, 2), (6, 2)] {
        let base_query = random_query(&mut rng, &catalog, &rels, k);
        let base = engine
            .evaluate_flat(&db, &base_query)
            .expect("base query evaluates");
        let rdb = RdbEngine::new().with_limits(
            EvalLimits::unlimited()
                .with_timeout(Duration::from_secs(30))
                .with_max_tuples(10_000_000),
        );
        let flat_input = rdb.evaluate(&db, &base_query).ok();
        let follow = random_followup_equalities(&mut rng, &catalog, &base_query, l);
        if follow.len() < l {
            continue;
        }

        group.bench_with_input(
            BenchmarkId::new("FDB_factorised", format!("K{k}_L{l}")),
            &(base.result.clone(), follow.clone()),
            |b, (input, eqs)| {
                b.iter(|| {
                    engine
                        .evaluate_factorised(input, &FactorisedQuery::equalities(eqs.clone()))
                        .expect("follow-up evaluates")
                });
            },
        );

        if let Some(flat) = flat_input {
            group.bench_with_input(
                BenchmarkId::new("RDB_scan", format!("K{k}_L{l}")),
                &(flat, follow),
                |b, (input, eqs)| {
                    b.iter(|| {
                        // One scan over the flat input, filtering by all
                        // equality conditions — what RDB does for queries on
                        // a materialised previous result.
                        let cols: Vec<(usize, usize)> = eqs
                            .iter()
                            .map(|(x, y)| {
                                (input.col_index(*x).unwrap(), input.col_index(*y).unwrap())
                            })
                            .collect();
                        input.filter(|row| cols.iter().all(|&(a, b)| row[a] == row[b]))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_factorised_eval);
criterion_main!(benches);
