//! Criterion benchmark for Experiment 3 (Figure 7): evaluating equi-join
//! queries on flat data with FDB (factorised result) and RDB (flat result).
//!
//! The scaling workload uses three ternary relations with uniform values in
//! `[1, 100]`; the combinatorial workload is the paper's `R = 4`, `A = 10`
//! dataset.  Benchmark sizes are kept modest so `cargo bench` terminates in
//! minutes; the `experiments` binary runs the full sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdb_common::RelId;
use fdb_core::FdbEngine;
use fdb_datagen::{
    combinatorial_database, populate, random_query, random_schema, ValueDistribution,
};
use fdb_relation::{EvalLimits, RdbEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp3_scaling_3x3_uniform");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3_000);
    let catalog = random_schema(&mut rng, 3, 9);
    let rels: Vec<RelId> = catalog.rels().collect();
    for &n in &[1_000usize, 3_000] {
        let db = populate(&mut rng, &catalog, n, 100, ValueDistribution::Uniform);
        for &k in &[3usize, 4] {
            let query = random_query(&mut rng, &catalog, &rels, k);
            group.bench_with_input(
                BenchmarkId::new("FDB", format!("N{n}_K{k}")),
                &(db.clone(), query.clone()),
                |b, (db, query)| {
                    b.iter(|| {
                        FdbEngine::new()
                            .evaluate_flat(db, query)
                            .expect("evaluates")
                    });
                },
            );
            let rdb = RdbEngine::new().with_limits(
                EvalLimits::unlimited()
                    .with_timeout(Duration::from_secs(30))
                    .with_max_tuples(10_000_000),
            );
            group.bench_with_input(
                BenchmarkId::new("RDB", format!("N{n}_K{k}")),
                &(db.clone(), query),
                |b, (db, query)| {
                    b.iter(|| {
                        // Timeouts count as completed iterations: the paper
                        // similarly reports them as missing points rather
                        // than waiting forever.
                        let _ = rdb.evaluate(db, query);
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_combinatorial(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp3_combinatorial_R4_A10");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3_100);
    let db = combinatorial_database(&mut rng, ValueDistribution::Uniform);
    let catalog = db.catalog().clone();
    let rels: Vec<RelId> = catalog.rels().collect();
    for &k in &[2usize, 4, 6] {
        let query = random_query(&mut rng, &catalog, &rels, k);
        group.bench_with_input(
            BenchmarkId::new("FDB", format!("K{k}")),
            &(db.clone(), query.clone()),
            |b, (db, query)| {
                b.iter(|| {
                    FdbEngine::new()
                        .evaluate_flat(db, query)
                        .expect("evaluates")
                });
            },
        );
        let rdb = RdbEngine::new().with_limits(
            EvalLimits::unlimited()
                .with_timeout(Duration::from_secs(30))
                .with_max_tuples(10_000_000),
        );
        group.bench_with_input(
            BenchmarkId::new("RDB", format!("K{k}")),
            &(db.clone(), query),
            |b, (db, query)| {
                b.iter(|| {
                    let _ = rdb.evaluate(db, query);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_combinatorial);
criterion_main!(benches);
