//! Error handling shared across the workspace.

use std::fmt;

/// Convenient result alias used throughout the FDB crates.
pub type Result<T> = std::result::Result<T, FdbError>;

/// Errors surfaced by the FDB engine and its substrates.
///
/// The engine is a library, so errors carry enough structured information for
/// a caller to react programmatically (and a human-readable message for
/// logging); none of them abort the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdbError {
    /// An attribute identifier was used that the catalog does not know about.
    UnknownAttribute {
        /// Offending attribute index.
        attr: u32,
    },
    /// A relation identifier was used that the catalog does not know about.
    UnknownRelation {
        /// Offending relation index.
        rel: u32,
    },
    /// A tuple of the wrong arity was inserted into a relation.
    ArityMismatch {
        /// Arity the relation expects.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A query referenced an attribute that none of its relations provide.
    AttributeNotInQuery {
        /// Human readable attribute description.
        attr: String,
    },
    /// An f-tree violates the path constraint (the attributes of some relation
    /// do not all lie on a single root-to-leaf path).
    PathConstraintViolation {
        /// Explanation of which relation is split across paths.
        detail: String,
    },
    /// An operator was applied to nodes in a configuration it does not
    /// support (e.g. merging nodes that are not siblings).
    InvalidOperator {
        /// Explanation of the unsupported configuration.
        detail: String,
    },
    /// An f-representation is structurally inconsistent with its f-tree.
    MalformedRepresentation {
        /// Explanation of the inconsistency.
        detail: String,
    },
    /// The linear program handed to the solver is infeasible.
    InfeasibleProgram,
    /// The linear program handed to the solver is unbounded.
    UnboundedProgram,
    /// The optimiser could not find any f-plan for the query.
    NoPlanFound {
        /// Explanation of why the search failed.
        detail: String,
    },
    /// A relation or query description was internally inconsistent.
    InvalidInput {
        /// Explanation of the inconsistency.
        detail: String,
    },
    /// Evaluation exceeded a caller-imposed resource limit (tuple budget or
    /// wall-clock deadline).  The experiment harness uses this to record
    /// timeouts exactly like the paper's missing data points.
    LimitExceeded {
        /// Explanation of which limit was hit.
        detail: String,
    },
    /// Evaluation ran past its wall-clock deadline (see
    /// [`crate::limits::QueryLimits::deadline`]) or was cancelled through
    /// its cancellation flag.  The partially built state is rolled back or
    /// discarded; the input representation is never left half-modified.
    DeadlineExceeded {
        /// The deadline that was exceeded, in milliseconds (0 when the
        /// evaluation was cancelled through the flag rather than timed out).
        limit_ms: u64,
    },
    /// Evaluation exceeded its work/memory budget (see
    /// [`crate::limits::QueryLimits::budget`]): the number of arena records
    /// processed or emitted overran the caller's bound, which caps both the
    /// time and the allocation a runaway query can consume.
    BudgetExceeded {
        /// The budget that was exhausted, in work units (≈ arena records).
        limit: u64,
    },
    /// The server refused the request at admission: the bounded in-flight
    /// window was full (load shedding instead of unbounded queueing) or the
    /// server was draining for shutdown.  The request was not executed at
    /// all; retrying later is safe.
    Overloaded {
        /// Requests in flight when the request was shed.
        in_flight: usize,
        /// The server's admission capacity.
        capacity: usize,
    },
    /// A serving worker panicked while executing the request.  The panic was
    /// caught at the request boundary: the worker thread survives, the rest
    /// of the batch completes, and only this request reports the failure.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// A snapshot file failed verification on load: a section checksum did
    /// not match, a length prefix ran past the end of the file (torn write),
    /// or the decoded arena failed the structural validator.  Nothing was
    /// loaded; the caller's database is unchanged.
    SnapshotCorrupt {
        /// Which section/check failed and how.
        detail: String,
    },
    /// A snapshot file was written by an incompatible format version.  (A
    /// file that is not a snapshot at all — wrong magic number — reports
    /// [`FdbError::SnapshotCorrupt`] instead.)
    SnapshotVersionMismatch {
        /// The version number found in the file header.
        found: u32,
        /// The version this build reads and writes.
        expected: u32,
    },
    /// The operating system refused a snapshot read or write (missing file,
    /// permissions, disk full, …).  Distinct from [`FdbError::SnapshotCorrupt`]:
    /// the bytes were never obtained or never durably written, rather than
    /// obtained and found invalid.
    SnapshotIo {
        /// The failed operation, the path involved and the OS error.
        detail: String,
    },
    /// An `AVG` aggregate's 128-bit `SUM` or `COUNT` wrapped around.
    /// `COUNT`/`SUM` results keep their documented mod-2^128 semantics, but
    /// a mean computed from wrapped operands would be silently wrong, so the
    /// `AVG` path reports the overflow instead of returning a
    /// plausible-looking value.
    AggregateOverflow {
        /// Which operand wrapped and in which aggregate.
        detail: String,
    },
    /// A representation was registered under a name that is already taken.
    /// Names are stable handles for clients, so a second registration is
    /// refused instead of silently shadowing (or being shadowed by) the
    /// first; replace the existing slot via its id instead.
    DuplicateName {
        /// The contested representation name.
        name: String,
    },
}

impl fmt::Display for FdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdbError::UnknownAttribute { attr } => write!(f, "unknown attribute id {attr}"),
            FdbError::UnknownRelation { rel } => write!(f, "unknown relation id {rel}"),
            FdbError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} values, got {actual}"
                )
            }
            FdbError::AttributeNotInQuery { attr } => {
                write!(f, "attribute {attr} does not occur in the query")
            }
            FdbError::PathConstraintViolation { detail } => {
                write!(f, "f-tree violates the path constraint: {detail}")
            }
            FdbError::InvalidOperator { detail } => {
                write!(
                    f,
                    "operator applied in an unsupported configuration: {detail}"
                )
            }
            FdbError::MalformedRepresentation { detail } => {
                write!(f, "malformed f-representation: {detail}")
            }
            FdbError::InfeasibleProgram => write!(f, "linear program is infeasible"),
            FdbError::UnboundedProgram => write!(f, "linear program is unbounded"),
            FdbError::NoPlanFound { detail } => write!(f, "no f-plan found: {detail}"),
            FdbError::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
            FdbError::LimitExceeded { detail } => write!(f, "resource limit exceeded: {detail}"),
            FdbError::DeadlineExceeded { limit_ms } => {
                if *limit_ms == 0 {
                    write!(f, "evaluation cancelled")
                } else {
                    write!(f, "deadline exceeded: evaluation ran past {limit_ms} ms")
                }
            }
            FdbError::BudgetExceeded { limit } => {
                write!(f, "budget exceeded: evaluation overran {limit} work units")
            }
            FdbError::Overloaded {
                in_flight,
                capacity,
            } => {
                write!(
                    f,
                    "server overloaded: {in_flight} requests in flight at capacity {capacity}"
                )
            }
            FdbError::WorkerPanicked { detail } => {
                write!(f, "serving worker panicked: {detail}")
            }
            FdbError::SnapshotCorrupt { detail } => {
                write!(f, "snapshot corrupt: {detail}")
            }
            FdbError::SnapshotVersionMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot version mismatch: found version {found}, this build reads {expected}"
                )
            }
            FdbError::SnapshotIo { detail } => {
                write!(f, "snapshot io error: {detail}")
            }
            FdbError::AggregateOverflow { detail } => {
                write!(f, "aggregate overflow: {detail}")
            }
            FdbError::DuplicateName { name } => {
                write!(f, "representation name {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for FdbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FdbError::ArityMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(e.to_string().contains("got 2"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FdbError::InfeasibleProgram, FdbError::InfeasibleProgram);
        assert_ne!(
            FdbError::UnknownAttribute { attr: 1 },
            FdbError::UnknownAttribute { attr: 2 }
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(FdbError::UnboundedProgram);
        assert!(e.to_string().contains("unbounded"));
    }
}
