//! Cooperative resource governance for query evaluation.
//!
//! A server that accepts arbitrary queries over factorised data must bound
//! what one request can cost: the paper's representations are exactly the
//! cases where a result blows up polynomially — a bad plan can emit an
//! arena orders of magnitude larger than its input.  This module provides
//! the two halves of that bound:
//!
//! * [`QueryLimits`] — the caller-facing description of a request's
//!   allowance: an optional wall-clock **deadline**, an optional **work
//!   budget** (units ≈ arena records processed or emitted, a direct proxy
//!   for both time and allocated memory), and an optional shared
//!   **cancellation flag**;
//! * [`ExecCtx`] — the execution-side context threaded through the hot
//!   loops.  Every governed loop calls [`ExecCtx::charge`] with the number
//!   of records it just processed.  The fast path is allocation-free and
//!   nearly branch-free: budget accounting is a subtract on a [`Cell`], and
//!   the expensive checks (reading the clock, loading the cancellation
//!   atomic) run only once per [`CHECK_INTERVAL`] units.  An ungoverned
//!   context ([`ExecCtx::unlimited`]) short-circuits to a single branch, so
//!   the existing single-user APIs pay nothing.
//!
//! Checks are **cooperative**: a loop that never charges can not be
//! interrupted.  The contract for governed code is that every loop whose
//! trip count depends on data size charges at least once per record batch,
//! and that an `Err` propagates without installing partial results — the
//! arena builders roll back to their watermarks, the overlay executors
//! build into fresh stores that are only swapped in on success.
//!
//! # Fault injection (`fault-injection` feature)
//!
//! With the `fault-injection` cargo feature enabled, a [`FaultPlan`] can be
//! attached to [`QueryLimits`]: a deterministic list of `(site, action)`
//! pairs consumed by the `failpoint!` sites inside the governed loops.  An
//! action fires on the first hit of its site and injects a panic, a delay,
//! or budget pressure.  Because the plan travels *inside the request*, the
//! injection is deterministic per request no matter how the pool schedules
//! the batch — which is what lets the chaos suite assert per-request error
//! attribution at any thread count.

use crate::error::{FdbError, Result};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many work units pass between two slow checks (clock read +
/// cancellation load).  Chosen so the amortised governance cost stays well
/// under the 3% overhead bound pinned by `bench-pr7` while a tripped
/// deadline is still noticed within microseconds of work.
pub const CHECK_INTERVAL: u64 = 1024;

/// The resource allowance of one query evaluation.
///
/// `Default` is fully ungoverned (no deadline, no budget, no flag) — the
/// single-user library APIs evaluate under exactly this.
#[derive(Clone, Debug, Default)]
pub struct QueryLimits {
    /// Wall-clock allowance, measured from the moment evaluation starts
    /// (context creation).  Exceeding it aborts with
    /// [`FdbError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Work budget in units of arena records processed or emitted — a proxy
    /// for both CPU time and allocated result memory.  Exhausting it aborts
    /// with [`FdbError::BudgetExceeded`].
    pub budget: Option<u64>,
    /// Shared cancellation flag: when set to `true` (by any thread), the
    /// evaluation aborts at its next check with
    /// [`FdbError::DeadlineExceeded`] (`limit_ms: 0`).
    pub cancel: Option<Arc<AtomicBool>>,
    /// Deterministic fault plan consumed by the `failpoint!` sites (tests
    /// only; see the module docs).
    #[cfg(feature = "fault-injection")]
    pub faults: FaultPlan,
}

impl QueryLimits {
    /// No deadline, no budget, no cancellation — the default.
    pub fn unlimited() -> Self {
        QueryLimits::default()
    }

    /// Limits with the given wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Limits with the given work budget (units ≈ arena records).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Limits with the given shared cancellation flag.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Limits with the given fault plan attached.
    #[cfg(feature = "fault-injection")]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Whether these limits can ever interrupt an evaluation.
    pub fn is_unlimited(&self) -> bool {
        let plain = self.deadline.is_none() && self.budget.is_none() && self.cancel.is_none();
        #[cfg(feature = "fault-injection")]
        {
            plain && self.faults.is_empty()
        }
        #[cfg(not(feature = "fault-injection"))]
        {
            plain
        }
    }
}

/// The execution-side governance context.  One per evaluation, created from
/// a [`QueryLimits`] at the evaluation boundary and threaded by reference
/// through the hot loops; interior mutability ([`Cell`]) keeps `charge`
/// callable through a shared reference.  Deliberately **not** `Sync`: a
/// context belongs to the one worker running the evaluation.
#[derive(Debug)]
pub struct ExecCtx {
    /// `true` when nothing can trip: `charge` returns after one branch.
    unlimited: bool,
    /// Absolute deadline, precomputed so checks are a single comparison.
    deadline: Option<Instant>,
    /// Original deadline duration, for the error report.
    limit_ms: u64,
    /// Remaining budget units; `u64::MAX` when no budget is set.
    budget: Cell<u64>,
    /// Original budget, for the error report.
    budget_limit: u64,
    /// Countdown to the next slow check.
    tick: Cell<u64>,
    cancel: Option<Arc<AtomicBool>>,
    /// Remaining (unfired) fault actions, consumed front to back per site.
    #[cfg(feature = "fault-injection")]
    faults: std::cell::RefCell<Vec<(String, FaultAction)>>,
}

impl ExecCtx {
    /// A context under which nothing ever trips — what every ungoverned
    /// public API evaluates with.
    pub fn unlimited() -> Self {
        ExecCtx::new(&QueryLimits::unlimited())
    }

    /// Starts a governed evaluation: the deadline clock begins now.
    pub fn new(limits: &QueryLimits) -> Self {
        ExecCtx {
            unlimited: limits.is_unlimited(),
            deadline: limits.deadline.map(|d| Instant::now() + d),
            limit_ms: limits.deadline.map_or(0, |d| d.as_millis() as u64),
            budget: Cell::new(limits.budget.unwrap_or(u64::MAX)),
            budget_limit: limits.budget.unwrap_or(u64::MAX),
            tick: Cell::new(CHECK_INTERVAL),
            cancel: limits.cancel.clone(),
            #[cfg(feature = "fault-injection")]
            faults: std::cell::RefCell::new(limits.faults.actions.clone()),
        }
    }

    /// Records `units` of work (≈ arena records processed or emitted) and
    /// aborts if a limit tripped.  Budget accounting is exact per call; the
    /// deadline and cancellation checks are amortised to once per
    /// [`CHECK_INTERVAL`] units.
    #[inline]
    pub fn charge(&self, units: u64) -> Result<()> {
        if self.unlimited {
            return Ok(());
        }
        let budget = self.budget.get();
        if budget < units {
            return Err(FdbError::BudgetExceeded {
                limit: self.budget_limit,
            });
        }
        self.budget.set(budget - units);
        let tick = self.tick.get();
        if tick > units {
            self.tick.set(tick - units);
            return Ok(());
        }
        self.tick.set(CHECK_INTERVAL);
        self.check_now()
    }

    /// The slow check: clock and cancellation flag, unamortised.  Governed
    /// code calls this directly at coarse boundaries (between plan
    /// operators); `charge` calls it once per interval.
    pub fn check_now(&self) -> Result<()> {
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(FdbError::DeadlineExceeded {
                    limit_ms: self.limit_ms,
                });
            }
        }
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(FdbError::DeadlineExceeded { limit_ms: 0 });
            }
        }
        Ok(())
    }

    /// Remaining budget units (`u64::MAX` when no budget is set).
    pub fn budget_remaining(&self) -> u64 {
        self.budget.get()
    }

    /// Fires any pending fault action registered for `site` (first hit
    /// consumes the action).  Called through the `failpoint!` macro so the
    /// sites vanish entirely without the feature.
    #[cfg(feature = "fault-injection")]
    pub fn hit_failpoint(&self, site: &str) -> Result<()> {
        let action = {
            let mut faults = self.faults.borrow_mut();
            match faults.iter().position(|(s, _)| s == site) {
                Some(i) => faults.remove(i).1,
                None => return Ok(()),
            }
        };
        match action {
            FaultAction::Panic(msg) => panic!("injected fault at {site}: {msg}"),
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                self.check_now()
            }
            FaultAction::BudgetPressure(units) => self.charge(units),
        }
    }
}

/// A deterministic list of faults to inject, attached to a request through
/// [`QueryLimits::with_faults`].  Each entry names a `failpoint!` site and
/// the action to take on that site's **first** hit; the entry is consumed
/// when it fires.
#[cfg(feature = "fault-injection")]
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    actions: Vec<(String, FaultAction)>,
}

#[cfg(feature = "fault-injection")]
impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Registers an action for the first hit of `site`.
    pub fn on(mut self, site: impl Into<String>, action: FaultAction) -> Self {
        self.actions.push((site.into(), action));
        self
    }
}

/// What an armed failpoint does when hit.
#[cfg(feature = "fault-injection")]
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Panic with the given message (exercises the worker's panic
    /// isolation: the request must report `WorkerPanicked`, the worker must
    /// survive).
    Panic(String),
    /// Sleep for the given duration (exercises the deadline: a request with
    /// a short deadline must report `DeadlineExceeded` at the next check).
    Delay(Duration),
    /// Charge the given number of budget units (exercises the budget: a
    /// request with a small budget must report `BudgetExceeded`).
    BudgetPressure(u64),
}

/// Fires a named failpoint against an [`ExecCtx`] — expands to nothing
/// unless the `fault-injection` feature is enabled, so production builds
/// carry zero code at the sites.  Usable only inside functions returning
/// [`Result`].
#[macro_export]
macro_rules! failpoint {
    ($ctx:expr, $site:expr) => {
        #[cfg(feature = "fault-injection")]
        {
            $ctx.hit_failpoint($site)?;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_context_never_trips() {
        let ctx = ExecCtx::unlimited();
        for _ in 0..10 {
            ctx.charge(u64::MAX / 32).unwrap();
        }
        ctx.check_now().unwrap();
    }

    #[test]
    fn budget_is_exact_and_reports_the_limit() {
        let ctx = ExecCtx::new(&QueryLimits::unlimited().with_budget(100));
        ctx.charge(60).unwrap();
        ctx.charge(40).unwrap();
        assert_eq!(ctx.charge(1), Err(FdbError::BudgetExceeded { limit: 100 }));
    }

    #[test]
    fn deadline_trips_at_the_next_amortised_check() {
        let ctx = ExecCtx::new(&QueryLimits::unlimited().with_deadline(Duration::ZERO));
        // Under a whole check interval nothing is checked yet…
        let mut tripped = false;
        for _ in 0..3 {
            if ctx.charge(CHECK_INTERVAL).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "an expired deadline trips within one interval");
    }

    #[test]
    fn cancellation_flag_aborts_with_limit_zero() {
        let flag = Arc::new(AtomicBool::new(false));
        let ctx = ExecCtx::new(&QueryLimits::unlimited().with_cancel(Arc::clone(&flag)));
        ctx.check_now().unwrap();
        flag.store(true, Ordering::Relaxed);
        assert_eq!(
            ctx.check_now(),
            Err(FdbError::DeadlineExceeded { limit_ms: 0 })
        );
    }

    #[test]
    fn charge_overhead_is_amortised() {
        // Not a benchmark (bench-pr7 measures the real overhead); this only
        // pins that tiny charges do not run the slow check every time, by
        // observing that a distant deadline context accepts a long run of
        // sub-interval charges quickly and correctly.
        let ctx = ExecCtx::new(&QueryLimits::unlimited().with_deadline(Duration::from_secs(3600)));
        for _ in 0..100_000 {
            ctx.charge(1).unwrap();
        }
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn failpoints_fire_once_and_only_at_their_site() {
        let limits = QueryLimits::unlimited()
            .with_budget(10)
            .with_faults(FaultPlan::new().on("here", FaultAction::BudgetPressure(100)));
        let ctx = ExecCtx::new(&limits);
        ctx.hit_failpoint("elsewhere").unwrap();
        assert_eq!(
            ctx.hit_failpoint("here"),
            Err(FdbError::BudgetExceeded { limit: 10 })
        );
        // Consumed: the second hit is a no-op.
        ctx.hit_failpoint("here").unwrap();
    }
}
