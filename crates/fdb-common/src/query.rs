//! Select-project-join query descriptions.
//!
//! A query in the paper's formalism is `Q = π_P σ_φ (R_1 × … × R_n)` where
//! `φ` is a conjunction of equality conditions `A = B` between attributes and
//! comparisons `A θ c` between an attribute and a constant.  Equi-joins are
//! equality selections over a product, so a single [`Query`] value captures
//! joins, selections and projections uniformly.
//!
//! The module also provides the *attribute equivalence classes* induced by
//! the equality conditions (the transitive closure of `A = B` pairs), because
//! the nodes of every f-tree of the query are labelled by exactly those
//! classes.

use crate::catalog::{AttrId, Catalog, RelId};
use crate::error::{FdbError, Result};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Comparison operator for selections with a constant (`A θ c`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ComparisonOp {
    /// `A = c`
    Eq,
    /// `A ≠ c`
    Ne,
    /// `A < c`
    Lt,
    /// `A ≤ c`
    Le,
    /// `A > c`
    Gt,
    /// `A ≥ c`
    Ge,
}

impl ComparisonOp {
    /// Evaluates the comparison for a concrete value.
    #[inline]
    pub fn eval(self, lhs: Value, rhs: Value) -> bool {
        match self {
            ComparisonOp::Eq => lhs == rhs,
            ComparisonOp::Ne => lhs != rhs,
            ComparisonOp::Lt => lhs < rhs,
            ComparisonOp::Le => lhs <= rhs,
            ComparisonOp::Gt => lhs > rhs,
            ComparisonOp::Ge => lhs >= rhs,
        }
    }
}

/// An equality condition `A = B` between two attributes (possibly of the same
/// relation, possibly of different relations — the latter is an equi-join).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EqualityCondition {
    /// Left attribute.
    pub left: AttrId,
    /// Right attribute.
    pub right: AttrId,
}

impl EqualityCondition {
    /// Creates a new equality condition, normalising the operand order.
    pub fn new(a: AttrId, b: AttrId) -> Self {
        if a <= b {
            EqualityCondition { left: a, right: b }
        } else {
            EqualityCondition { left: b, right: a }
        }
    }
}

/// A selection with a constant, `A θ c`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConstSelection {
    /// Attribute being compared.
    pub attr: AttrId,
    /// Comparison operator.
    pub op: ComparisonOp,
    /// Constant to compare against.
    pub value: Value,
}

/// An aggregate function of a query head.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggregateFunc {
    /// `COUNT(*)` — number of result tuples.
    Count,
    /// `SUM(A)`.
    Sum,
    /// `MIN(A)`.
    Min,
    /// `MAX(A)`.
    Max,
    /// `AVG(A)`.
    Avg,
}

/// An aggregate query head: instead of returning the (factorised) result
/// relation, the query returns one aggregate value — or one per group when
/// `group_by` is non-empty.  The evaluation-level semantics (128-bit
/// wrapping `COUNT`/`SUM`, `None` for empty `MIN`/`MAX`/`AVG` groups,
/// value-set `DISTINCT` aggregates) live with the evaluator in `fdb-frep`'s
/// `aggregate` module.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AggregateHead {
    /// The aggregate function.
    pub func: AggregateFunc,
    /// The aggregated attribute; `None` only for `COUNT`.
    pub attr: Option<AttrId>,
    /// `COUNT(DISTINCT A)` / `SUM(DISTINCT A)` / `AVG(DISTINCT A)`: the
    /// aggregate ranges over the *distinct* values of `attr` in the result
    /// instead of one contribution per tuple.  Requires `attr`; meaningless
    /// (and rejected) for `MIN`/`MAX`, which are insensitive to multiplicity.
    pub distinct: bool,
    /// Grouping attributes, outermost first.  Empty means a scalar
    /// aggregate.  At evaluation time the group attributes must label a
    /// root-to-node path of the result's f-tree — the engine restructures
    /// the tree to make that so (or falls back to hash grouping when the
    /// restructuring is too costly).
    pub group_by: Vec<AttrId>,
}

impl AggregateHead {
    /// `COUNT(*)`, optionally grouped.
    pub fn count() -> Self {
        AggregateHead {
            func: AggregateFunc::Count,
            attr: None,
            distinct: false,
            group_by: Vec::new(),
        }
    }

    /// An aggregate over an attribute.
    pub fn over(func: AggregateFunc, attr: AttrId) -> Self {
        AggregateHead {
            func,
            attr: Some(attr),
            distinct: false,
            group_by: Vec::new(),
        }
    }

    /// Appends a grouping attribute and returns the head for chaining; call
    /// repeatedly (outermost group first) for multi-attribute grouping.
    pub fn grouped_by(mut self, attr: AttrId) -> Self {
        self.group_by.push(attr);
        self
    }

    /// Marks the head as a `DISTINCT` aggregate and returns it for chaining.
    pub fn with_distinct(mut self) -> Self {
        self.distinct = true;
        self
    }
}

/// A select-project-join query `π_P σ_φ (R_1 × … × R_n)`.
#[derive(Clone, Debug)]
pub struct Query {
    /// Relations appearing in the product, in declaration order.
    pub relations: Vec<RelId>,
    /// Equality conditions between attributes (joins and self-selections).
    pub equalities: Vec<EqualityCondition>,
    /// Selections with constants.
    pub const_selections: Vec<ConstSelection>,
    /// Projection list.  `None` means "project onto all attributes".
    pub projection: Option<Vec<AttrId>>,
    /// Optional aggregate head: the query returns this aggregate of the
    /// result instead of the result relation itself.
    pub aggregate: Option<AggregateHead>,
    /// `ORDER BY` head: the result tuples are returned sorted by these
    /// attributes (outermost sort key first), ties broken by the remaining
    /// output attributes in ascending id order — a total, deterministic
    /// order.  Empty means unordered.  The engine restructures the f-tree so
    /// the ordering attributes sit on the root path (ordered enumeration is
    /// then free) when that is no costlier than the input tree, else it
    /// materialises and sorts.
    pub order_by: Vec<AttrId>,
}

impl Query {
    /// Creates a query over the given relations with no conditions and the
    /// identity projection.
    pub fn product(relations: Vec<RelId>) -> Self {
        Query {
            relations,
            equalities: Vec::new(),
            const_selections: Vec::new(),
            projection: None,
            aggregate: None,
            order_by: Vec::new(),
        }
    }

    /// Adds an equality condition and returns the query for chaining.
    pub fn with_equality(mut self, a: AttrId, b: AttrId) -> Self {
        self.equalities.push(EqualityCondition::new(a, b));
        self
    }

    /// Adds a selection with a constant and returns the query for chaining.
    pub fn with_const_selection(mut self, attr: AttrId, op: ComparisonOp, value: Value) -> Self {
        self.const_selections
            .push(ConstSelection { attr, op, value });
        self
    }

    /// Sets the projection list and returns the query for chaining.
    pub fn with_projection(mut self, attrs: Vec<AttrId>) -> Self {
        self.projection = Some(attrs);
        self
    }

    /// Sets the aggregate head and returns the query for chaining.
    pub fn with_aggregate(mut self, head: AggregateHead) -> Self {
        self.aggregate = Some(head);
        self
    }

    /// Sets the `ORDER BY` attributes (outermost sort key first) and returns
    /// the query for chaining.
    pub fn with_order_by(mut self, attrs: Vec<AttrId>) -> Self {
        self.order_by = attrs;
        self
    }

    /// All attributes ranged over by the query (the attributes of all its
    /// relations), in ascending id order.
    pub fn all_attrs(&self, catalog: &Catalog) -> Vec<AttrId> {
        let mut attrs: Vec<AttrId> = self
            .relations
            .iter()
            .flat_map(|&r| catalog.rel_attrs(r).iter().copied())
            .collect();
        attrs.sort_unstable();
        attrs.dedup();
        attrs
    }

    /// The attributes the query projects onto (all attributes if the
    /// projection list is `None`), in ascending id order.
    pub fn output_attrs(&self, catalog: &Catalog) -> Vec<AttrId> {
        match &self.projection {
            Some(p) => {
                let mut attrs = p.clone();
                attrs.sort_unstable();
                attrs.dedup();
                attrs
            }
            None => self.all_attrs(catalog),
        }
    }

    /// Validates that the query is well-formed with respect to `catalog`:
    /// every referenced relation/attribute exists and every attribute used in
    /// a condition or projection belongs to one of the query's relations.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        for &rel in &self.relations {
            catalog.check_rel(rel)?;
        }
        let in_query: BTreeSet<AttrId> = self.all_attrs(catalog).into_iter().collect();
        let check = |attr: AttrId| -> Result<()> {
            catalog.check_attr(attr)?;
            if in_query.contains(&attr) {
                Ok(())
            } else {
                Err(FdbError::AttributeNotInQuery {
                    attr: catalog.qualified_attr_name(attr),
                })
            }
        };
        for eq in &self.equalities {
            check(eq.left)?;
            check(eq.right)?;
        }
        for sel in &self.const_selections {
            check(sel.attr)?;
        }
        if let Some(proj) = &self.projection {
            for &attr in proj {
                check(attr)?;
            }
        }
        if let Some(head) = &self.aggregate {
            match (head.func, head.attr) {
                // COUNT(*) needs no attribute, but one given must still
                // belong to the query.
                (AggregateFunc::Count, None) => {}
                (_, Some(attr)) => check(attr)?,
                (func, None) => {
                    return Err(FdbError::InvalidInput {
                        detail: format!("aggregate {func:?} requires an attribute"),
                    })
                }
            }
            if head.distinct {
                if head.attr.is_none() {
                    return Err(FdbError::InvalidInput {
                        detail: "DISTINCT aggregate requires an attribute".to_string(),
                    });
                }
                if matches!(head.func, AggregateFunc::Min | AggregateFunc::Max) {
                    return Err(FdbError::InvalidInput {
                        detail: format!(
                            "DISTINCT is meaningless for {:?}: the result is \
                             insensitive to multiplicity",
                            head.func
                        ),
                    });
                }
            }
            let mut seen_groups = BTreeSet::new();
            for &group in &head.group_by {
                check(group)?;
                if !seen_groups.insert(group) {
                    return Err(FdbError::InvalidInput {
                        detail: format!("duplicate group-by attribute {group}"),
                    });
                }
            }
        }
        let mut seen_order = BTreeSet::new();
        for &attr in &self.order_by {
            check(attr)?;
            if !seen_order.insert(attr) {
                return Err(FdbError::InvalidInput {
                    detail: format!("duplicate ORDER BY attribute {attr}"),
                });
            }
        }
        if !self.order_by.is_empty() && self.aggregate.is_some() {
            return Err(FdbError::InvalidInput {
                detail: "ORDER BY on an aggregate head is not supported \
                         (grouped results come out in group-key order already)"
                    .to_string(),
            });
        }
        Ok(())
    }

    /// Computes the attribute equivalence classes induced by the equality
    /// conditions: the finest partition of the query's attributes in which
    /// attributes related (transitively) by `A = B` conditions share a class.
    ///
    /// Classes are returned in ascending order of their smallest member, each
    /// class sorted ascending; this canonical order is relied upon by the
    /// f-tree construction.
    pub fn equivalence_classes(&self, catalog: &Catalog) -> Vec<BTreeSet<AttrId>> {
        let attrs = self.all_attrs(catalog);
        let mut uf = UnionFind::new(&attrs);
        for eq in &self.equalities {
            uf.union(eq.left, eq.right);
        }
        uf.classes()
    }

    /// Number of *non-redundant* equality conditions: equalities that merge
    /// two previously distinct equivalence classes.  The experiments in the
    /// paper always use non-redundant conjunctions, and the optimisers use
    /// this count for search-space bookkeeping.
    pub fn non_redundant_equality_count(&self, catalog: &Catalog) -> usize {
        let attrs = self.all_attrs(catalog);
        let mut uf = UnionFind::new(&attrs);
        let mut count = 0;
        for eq in &self.equalities {
            if uf.union(eq.left, eq.right) {
                count += 1;
            }
        }
        count
    }
}

/// A small union-find over attribute ids, used to compute equivalence
/// classes of attributes under equality conditions.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: BTreeMap<AttrId, AttrId>,
}

impl UnionFind {
    /// Creates a union-find where every listed attribute is its own class.
    pub fn new(attrs: &[AttrId]) -> Self {
        UnionFind {
            parent: attrs.iter().map(|&a| (a, a)).collect(),
        }
    }

    /// Finds the representative of an attribute's class (with path
    /// compression).
    pub fn find(&mut self, attr: AttrId) -> AttrId {
        let p = *self.parent.get(&attr).unwrap_or(&attr);
        if p == attr {
            return attr;
        }
        let root = self.find(p);
        self.parent.insert(attr, root);
        root
    }

    /// Unions the classes of two attributes.  Returns `true` if the two were
    /// previously in different classes.
    pub fn union(&mut self, a: AttrId, b: AttrId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(hi, lo);
        true
    }

    /// Returns the equivalence classes, canonically ordered.
    pub fn classes(&mut self) -> Vec<BTreeSet<AttrId>> {
        let keys: Vec<AttrId> = self.parent.keys().copied().collect();
        let mut by_root: BTreeMap<AttrId, BTreeSet<AttrId>> = BTreeMap::new();
        for attr in keys {
            let root = self.find(attr);
            by_root.entry(root).or_default().insert(attr);
        }
        by_root.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::builder()
            .relation("R", &["A", "B"])
            .relation("S", &["B", "C"])
            .relation("T", &["C", "D"])
            .build()
    }

    #[test]
    fn all_and_output_attrs() {
        let cat = catalog();
        let q = Query::product(vec![RelId(0), RelId(1)]);
        assert_eq!(
            q.all_attrs(&cat),
            vec![AttrId(0), AttrId(1), AttrId(2), AttrId(3)]
        );
        let q = q.with_projection(vec![AttrId(3), AttrId(0), AttrId(3)]);
        assert_eq!(q.output_attrs(&cat), vec![AttrId(0), AttrId(3)]);
    }

    #[test]
    fn equivalence_classes_are_transitive() {
        let cat = catalog();
        // Chain join: R.B = S.B, S.C = T.C.
        let q = Query::product(vec![RelId(0), RelId(1), RelId(2)])
            .with_equality(AttrId(1), AttrId(2))
            .with_equality(AttrId(3), AttrId(4));
        let classes = q.equivalence_classes(&cat);
        assert_eq!(classes.len(), 4);
        assert!(classes.contains(&[AttrId(1), AttrId(2)].into_iter().collect()));
        assert!(classes.contains(&[AttrId(3), AttrId(4)].into_iter().collect()));
        assert!(classes.contains(&[AttrId(0)].into_iter().collect()));
        assert!(classes.contains(&[AttrId(5)].into_iter().collect()));
    }

    #[test]
    fn transitive_chain_collapses_to_one_class() {
        let cat = catalog();
        let q = Query::product(vec![RelId(0), RelId(1), RelId(2)])
            .with_equality(AttrId(1), AttrId(2))
            .with_equality(AttrId(2), AttrId(0))
            .with_equality(AttrId(0), AttrId(5));
        let classes = q.equivalence_classes(&cat);
        let big: BTreeSet<AttrId> = [AttrId(0), AttrId(1), AttrId(2), AttrId(5)]
            .into_iter()
            .collect();
        assert!(classes.contains(&big));
    }

    #[test]
    fn non_redundant_count_ignores_implied_equalities() {
        let cat = catalog();
        let q = Query::product(vec![RelId(0), RelId(1)])
            .with_equality(AttrId(1), AttrId(2))
            .with_equality(AttrId(2), AttrId(1)) // duplicate
            .with_equality(AttrId(1), AttrId(2)); // duplicate
        assert_eq!(q.non_redundant_equality_count(&cat), 1);
    }

    #[test]
    fn validate_rejects_foreign_attributes() {
        let cat = catalog();
        // T.D referenced but T not part of the query.
        let q = Query::product(vec![RelId(0), RelId(1)]).with_equality(AttrId(0), AttrId(5));
        assert!(matches!(
            q.validate(&cat),
            Err(FdbError::AttributeNotInQuery { .. })
        ));
        let ok = Query::product(vec![RelId(0), RelId(1)]).with_equality(AttrId(1), AttrId(2));
        assert!(ok.validate(&cat).is_ok());
    }

    #[test]
    fn aggregate_heads_validate() {
        let cat = catalog();
        let base = Query::product(vec![RelId(0), RelId(1)]);
        // COUNT needs no attribute.
        assert!(base
            .clone()
            .with_aggregate(AggregateHead::count())
            .validate(&cat)
            .is_ok());
        // SUM over an attribute of the query, grouped by another.
        let head = AggregateHead::over(AggregateFunc::Sum, AttrId(3)).grouped_by(AttrId(0));
        assert!(base.clone().with_aggregate(head).validate(&cat).is_ok());
        // SUM without an attribute is malformed.
        let head = AggregateHead {
            func: AggregateFunc::Sum,
            attr: None,
            distinct: false,
            group_by: Vec::new(),
        };
        assert!(matches!(
            base.clone().with_aggregate(head).validate(&cat),
            Err(FdbError::InvalidInput { .. })
        ));
        // Aggregating or grouping over a foreign attribute is rejected —
        // including a (superfluous) attribute on a COUNT head.
        let head = AggregateHead::over(AggregateFunc::Min, AttrId(5));
        assert!(base.clone().with_aggregate(head).validate(&cat).is_err());
        let head = AggregateHead::over(AggregateFunc::Count, AttrId(5));
        assert!(base.clone().with_aggregate(head).validate(&cat).is_err());
        let head = AggregateHead::count().grouped_by(AttrId(5));
        assert!(base.with_aggregate(head).validate(&cat).is_err());
    }

    #[test]
    fn distinct_and_multi_group_heads_validate() {
        let cat = catalog();
        let base = Query::product(vec![RelId(0), RelId(1)]);
        // COUNT(DISTINCT B), grouped by (A, C) — outermost group first.
        let head = AggregateHead::over(AggregateFunc::Count, AttrId(1))
            .with_distinct()
            .grouped_by(AttrId(0))
            .grouped_by(AttrId(3));
        assert!(base.clone().with_aggregate(head).validate(&cat).is_ok());
        // DISTINCT without an attribute is malformed.
        let head = AggregateHead::count().with_distinct();
        assert!(base.clone().with_aggregate(head).validate(&cat).is_err());
        // DISTINCT MIN/MAX are rejected (multiplicity-insensitive).
        let head = AggregateHead::over(AggregateFunc::Min, AttrId(0)).with_distinct();
        assert!(base.clone().with_aggregate(head).validate(&cat).is_err());
        // Duplicate group attributes are rejected.
        let head = AggregateHead::count()
            .grouped_by(AttrId(0))
            .grouped_by(AttrId(0));
        assert!(base.with_aggregate(head).validate(&cat).is_err());
    }

    #[test]
    fn order_by_heads_validate() {
        let cat = catalog();
        let base = Query::product(vec![RelId(0), RelId(1)]);
        assert!(base
            .clone()
            .with_order_by(vec![AttrId(3), AttrId(0)])
            .validate(&cat)
            .is_ok());
        // Foreign attribute.
        assert!(base
            .clone()
            .with_order_by(vec![AttrId(5)])
            .validate(&cat)
            .is_err());
        // Duplicate ordering attribute.
        assert!(base
            .clone()
            .with_order_by(vec![AttrId(0), AttrId(0)])
            .validate(&cat)
            .is_err());
        // ORDER BY composed with an aggregate head is rejected.
        assert!(base
            .with_aggregate(AggregateHead::count())
            .with_order_by(vec![AttrId(0)])
            .validate(&cat)
            .is_err());
    }

    #[test]
    fn comparison_ops_evaluate() {
        use ComparisonOp::*;
        let five = Value::new(5);
        let six = Value::new(6);
        assert!(Eq.eval(five, five));
        assert!(!Eq.eval(five, six));
        assert!(Ne.eval(five, six));
        assert!(Lt.eval(five, six));
        assert!(Le.eval(five, five));
        assert!(Gt.eval(six, five));
        assert!(Ge.eval(six, six));
    }

    #[test]
    fn equality_condition_normalises_order() {
        assert_eq!(
            EqualityCondition::new(AttrId(5), AttrId(2)),
            EqualityCondition::new(AttrId(2), AttrId(5))
        );
    }
}
