//! The query catalog: relations, attributes, and which attribute belongs to
//! which relation.
//!
//! A select-project-join query `π_P σ_φ (R_1 × … × R_n)` ranges over the
//! attributes of all its relations.  The paper treats attributes of distinct
//! relations as distinct even when they share a name (equality conditions in
//! `φ` are what ties them together), so the catalog assigns every attribute
//! occurrence a globally unique [`AttrId`] and records its owning relation.
//!
//! The catalog also stores human-readable names, which keeps error messages
//! and debugging output (e.g. rendering an f-tree) pleasant.

use crate::error::{FdbError, Result};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of an attribute occurrence within a [`Catalog`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AttrId(pub u32);

impl AttrId {
    /// Returns the attribute id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Identifier of a relation within a [`Catalog`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub u32);

impl RelId {
    /// Returns the relation id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct AttrMeta {
    name: String,
    rel: RelId,
}

#[derive(Clone, Debug)]
struct RelMeta {
    name: String,
    attrs: Vec<AttrId>,
}

/// Schema-level description of a database or query: which relations exist and
/// which attributes each of them has.
///
/// A catalog is immutable once built (via [`Catalog::builder`] or the
/// convenience constructors); every other crate refers to attributes and
/// relations exclusively through [`AttrId`] / [`RelId`] handles issued by it.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    attrs: Vec<AttrMeta>,
    rels: Vec<RelMeta>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Starts building a catalog.
    pub fn builder() -> CatalogBuilder {
        CatalogBuilder {
            catalog: Catalog::new(),
        }
    }

    /// Adds a relation with the given attribute names, returning the new
    /// relation id and the ids of its attributes (in declaration order).
    pub fn add_relation<S: AsRef<str>>(
        &mut self,
        name: &str,
        attr_names: &[S],
    ) -> (RelId, Vec<AttrId>) {
        let rel = RelId(self.rels.len() as u32);
        let mut attrs = Vec::with_capacity(attr_names.len());
        for attr_name in attr_names {
            let attr = AttrId(self.attrs.len() as u32);
            self.attrs.push(AttrMeta {
                name: attr_name.as_ref().to_owned(),
                rel,
            });
            attrs.push(attr);
        }
        self.rels.push(RelMeta {
            name: name.to_owned(),
            attrs: attrs.clone(),
        });
        (rel, attrs)
    }

    /// Number of attributes across all relations.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Number of relations.
    pub fn rel_count(&self) -> usize {
        self.rels.len()
    }

    /// Iterates over all attribute ids.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attrs.len() as u32).map(AttrId)
    }

    /// Iterates over all relation ids.
    pub fn rels(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.rels.len() as u32).map(RelId)
    }

    /// Returns the name of an attribute.
    pub fn attr_name(&self, attr: AttrId) -> &str {
        &self.attrs[attr.index()].name
    }

    /// Returns the relation owning an attribute.
    pub fn attr_relation(&self, attr: AttrId) -> RelId {
        self.attrs[attr.index()].rel
    }

    /// Returns the name of a relation.
    pub fn rel_name(&self, rel: RelId) -> &str {
        &self.rels[rel.index()].name
    }

    /// Returns the attributes of a relation, in declaration order.
    pub fn rel_attrs(&self, rel: RelId) -> &[AttrId] {
        &self.rels[rel.index()].attrs
    }

    /// Arity (number of attributes) of a relation.
    pub fn rel_arity(&self, rel: RelId) -> usize {
        self.rels[rel.index()].attrs.len()
    }

    /// Validates that an attribute id belongs to this catalog.
    pub fn check_attr(&self, attr: AttrId) -> Result<()> {
        if attr.index() < self.attrs.len() {
            Ok(())
        } else {
            Err(FdbError::UnknownAttribute { attr: attr.0 })
        }
    }

    /// Validates that a relation id belongs to this catalog.
    pub fn check_rel(&self, rel: RelId) -> Result<()> {
        if rel.index() < self.rels.len() {
            Ok(())
        } else {
            Err(FdbError::UnknownRelation { rel: rel.0 })
        }
    }

    /// Looks up an attribute by `"relation.attribute"` qualified name, or by
    /// bare attribute name if it is unambiguous.
    pub fn find_attr(&self, name: &str) -> Option<AttrId> {
        if let Some((rel_name, attr_name)) = name.split_once('.') {
            let rel = self.rels.iter().position(|r| r.name == rel_name)?;
            return self.rels[rel]
                .attrs
                .iter()
                .copied()
                .find(|&a| self.attr_name(a) == attr_name);
        }
        let mut found = None;
        for attr in self.attrs() {
            if self.attr_name(attr) == name {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(attr);
            }
        }
        found
    }

    /// Looks up a relation by name.
    pub fn find_rel(&self, name: &str) -> Option<RelId> {
        self.rels
            .iter()
            .position(|r| r.name == name)
            .map(|i| RelId(i as u32))
    }

    /// Returns a fully qualified, human readable name for an attribute.
    pub fn qualified_attr_name(&self, attr: AttrId) -> String {
        let rel = self.attr_relation(attr);
        format!("{}.{}", self.rel_name(rel), self.attr_name(attr))
    }

    /// Returns the set of relations having at least one attribute in `attrs`.
    pub fn relations_of_attrs(&self, attrs: &BTreeSet<AttrId>) -> BTreeSet<RelId> {
        attrs.iter().map(|&a| self.attr_relation(a)).collect()
    }
}

/// Incremental builder for [`Catalog`].
#[derive(Clone, Debug, Default)]
pub struct CatalogBuilder {
    catalog: Catalog,
}

impl CatalogBuilder {
    /// Adds a relation, returning the builder for chaining.
    pub fn relation<S: AsRef<str>>(mut self, name: &str, attr_names: &[S]) -> Self {
        self.catalog.add_relation(name, attr_names);
        self
    }

    /// Finishes building.
    pub fn build(self) -> Catalog {
        self.catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grocery_catalog() -> Catalog {
        Catalog::builder()
            .relation("Orders", &["oid", "item"])
            .relation("Store", &["location", "item"])
            .relation("Disp", &["dispatcher", "location"])
            .build()
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let cat = grocery_catalog();
        assert_eq!(cat.rel_count(), 3);
        assert_eq!(cat.attr_count(), 6);
        assert_eq!(cat.rel_attrs(RelId(0)), &[AttrId(0), AttrId(1)]);
        assert_eq!(cat.rel_attrs(RelId(2)), &[AttrId(4), AttrId(5)]);
    }

    #[test]
    fn attribute_metadata_is_consistent() {
        let cat = grocery_catalog();
        assert_eq!(cat.attr_name(AttrId(1)), "item");
        assert_eq!(cat.attr_relation(AttrId(1)), RelId(0));
        assert_eq!(cat.qualified_attr_name(AttrId(3)), "Store.item");
        assert_eq!(cat.rel_arity(RelId(1)), 2);
    }

    #[test]
    fn lookup_by_name_handles_qualification_and_ambiguity() {
        let cat = grocery_catalog();
        // "item" occurs in two relations: unqualified lookup is ambiguous.
        assert_eq!(cat.find_attr("item"), None);
        assert_eq!(cat.find_attr("Orders.item"), Some(AttrId(1)));
        assert_eq!(cat.find_attr("Store.item"), Some(AttrId(3)));
        assert_eq!(cat.find_attr("oid"), Some(AttrId(0)));
        assert_eq!(cat.find_rel("Disp"), Some(RelId(2)));
        assert_eq!(cat.find_rel("Missing"), None);
    }

    #[test]
    fn validation_reports_unknown_ids() {
        let cat = grocery_catalog();
        assert!(cat.check_attr(AttrId(5)).is_ok());
        assert_eq!(
            cat.check_attr(AttrId(6)),
            Err(FdbError::UnknownAttribute { attr: 6 })
        );
        assert_eq!(
            cat.check_rel(RelId(9)),
            Err(FdbError::UnknownRelation { rel: 9 })
        );
    }

    #[test]
    fn relations_of_attrs_collects_owners() {
        let cat = grocery_catalog();
        let attrs: BTreeSet<AttrId> = [AttrId(0), AttrId(3)].into_iter().collect();
        let rels = cat.relations_of_attrs(&attrs);
        assert_eq!(rels, [RelId(0), RelId(1)].into_iter().collect());
    }
}
