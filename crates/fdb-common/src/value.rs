//! Domain values stored in relations and factorised representations.
//!
//! The paper evaluates FDB on integer data ("a singleton holds an 8 byte
//! integer"), so the core value type is a thin wrapper around `u64`.  Keeping
//! the wrapper (rather than a bare integer) gives us a single place to attach
//! ordering, formatting and conversion behaviour, and it makes signatures
//! throughout the workspace self-documenting.

use std::fmt;

/// A single domain value: an 8-byte unsigned integer, as in the paper's
/// experiments.
///
/// Values are totally ordered; f-representations keep the values of every
/// union in increasing order, and all operators rely on that order (e.g. the
/// swap operator's priority queue and the merge operator's sort-merge join).
///
/// The layout is `repr(transparent)` over `u64`: flat value arrays
/// (`&[Value]`) are byte-compatible with `&[u64]`, which the vectorised scan
/// kernels in `fdb-frep` rely on to load values directly into SIMD lanes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Value(pub u64);

impl Value {
    /// The smallest possible value.
    pub const MIN: Value = Value(u64::MIN);
    /// The largest possible value.
    pub const MAX: Value = Value(u64::MAX);

    /// Creates a value from a raw integer.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Value(raw)
    }

    /// Returns the raw integer backing this value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for Value {
    #[inline]
    fn from(raw: u64) -> Self {
        Value(raw)
    }
}

impl From<u32> for Value {
    #[inline]
    fn from(raw: u32) -> Self {
        Value(raw as u64)
    }
}

impl From<usize> for Value {
    #[inline]
    fn from(raw: usize) -> Self {
        Value(raw as u64)
    }
}

impl From<Value> for u64 {
    #[inline]
    fn from(v: Value) -> Self {
        v.0
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_raw_integers() {
        assert!(Value::new(1) < Value::new(2));
        assert!(Value::new(100) > Value::new(99));
        assert_eq!(Value::new(7), Value::from(7u64));
    }

    #[test]
    fn min_max_bracket_everything() {
        let v = Value::new(42);
        assert!(Value::MIN <= v && v <= Value::MAX);
    }

    #[test]
    fn conversions_round_trip() {
        let v = Value::from(123usize);
        assert_eq!(u64::from(v), 123);
        assert_eq!(v.raw(), 123);
    }

    #[test]
    fn display_matches_raw() {
        assert_eq!(Value::new(9).to_string(), "9");
        assert_eq!(format!("{:?}", Value::new(9)), "9");
    }
}
