//! Common building blocks shared by every crate of the FDB reproduction.
//!
//! This crate deliberately has no dependencies: it defines the vocabulary the
//! rest of the workspace speaks — domain [`Value`]s, attribute and relation
//! identifiers, the query [`Catalog`] describing which attribute belongs to
//! which relation, the [`Query`] description for select-project-join queries,
//! and the shared [`FdbError`] type.
//!
//! The factorised-database formalism of the paper (Bakibayev, Olteanu,
//! Závodný: *FDB: A Query Engine for Factorised Relational Databases*, 2012)
//! treats a database as a set of named relations over named attributes, and a
//! query as `π_P σ_φ (R_1 × … × R_n)` where `φ` is a conjunction of equality
//! conditions between attributes or between an attribute and a constant.
//! Everything in this crate exists to describe exactly that — plus the
//! [`limits`] module, the cooperative resource-governance vocabulary
//! ([`QueryLimits`]/[`ExecCtx`]) the serving layer threads through the
//! evaluation hot loops.

#![warn(missing_docs)]

pub mod catalog;
pub mod error;
pub mod limits;
pub mod query;
pub mod value;

pub use catalog::{AttrId, Catalog, RelId};
pub use error::{FdbError, Result};
pub use limits::{ExecCtx, QueryLimits};
#[cfg(feature = "fault-injection")]
pub use limits::{FaultAction, FaultPlan};
pub use query::{
    AggregateFunc, AggregateHead, ComparisonOp, ConstSelection, EqualityCondition, Query,
};
pub use value::Value;
