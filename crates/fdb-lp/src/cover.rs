//! Edge cover numbers of hypergraphs.
//!
//! For a root-to-leaf path `p` of an f-tree, the paper forms the hypergraph
//! whose vertices are the attribute classes on `p` and whose edges are the
//! relations containing attributes of those classes, and computes the
//! *fractional edge cover number*: the optimal value of
//!
//! ```text
//! minimise   Σ_i x_i
//! subject to Σ_{i : edge i covers vertex v} x_i ≥ 1   for every vertex v
//!            x_i ≥ 0
//! ```
//!
//! The maximum of this number over all root-to-leaf paths is `s(T)`, the
//! exponent of the tight size bound `O(|D|^{s(T)})` on f-representations
//! over `T`.  The integral variant (weights restricted to `{0, 1}`) is also
//! provided; it is used in tests and as a sanity upper bound.

use crate::simplex::{ConstraintSense, LinearProgram};
use fdb_common::Result;

/// A hypergraph edge-cover instance: `num_vertices` vertices and a list of
/// edges, each edge being the set of vertex indices it covers.
#[derive(Clone, Debug, Default)]
pub struct CoverInstance {
    /// Number of vertices that must be covered (indices `0..num_vertices`).
    pub num_vertices: usize,
    /// Edges; each edge lists the vertices it covers.
    pub edges: Vec<Vec<usize>>,
}

impl CoverInstance {
    /// Creates an instance with the given number of vertices and no edges.
    pub fn new(num_vertices: usize) -> Self {
        CoverInstance {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Adds an edge covering the given vertices and returns its index.
    pub fn add_edge(&mut self, vertices: Vec<usize>) -> usize {
        self.edges.push(vertices);
        self.edges.len() - 1
    }

    /// Returns `true` if every vertex is covered by at least one edge (a
    /// prerequisite for any cover — fractional or integral — to exist).
    pub fn is_coverable(&self) -> bool {
        let mut covered = vec![false; self.num_vertices];
        for edge in &self.edges {
            for &v in edge {
                if v < self.num_vertices {
                    covered[v] = true;
                }
            }
        }
        covered.into_iter().all(|c| c)
    }
}

/// Computes the fractional edge cover number of the instance by solving the
/// covering LP with the simplex solver.
///
/// Returns an error if some vertex cannot be covered by any edge (the LP
/// would be infeasible).  An instance with zero vertices has cover number 0.
pub fn fractional_edge_cover(instance: &CoverInstance) -> Result<f64> {
    if instance.num_vertices == 0 {
        return Ok(0.0);
    }
    let n = instance.edges.len();
    let mut lp = LinearProgram::new(n);
    lp.set_objective(vec![1.0; n]);
    for v in 0..instance.num_vertices {
        let mut row = vec![0.0; n];
        for (i, edge) in instance.edges.iter().enumerate() {
            if edge.contains(&v) {
                row[i] = 1.0;
            }
        }
        lp.add_constraint(row, ConstraintSense::GreaterEq, 1.0);
    }
    let sol = lp.minimize()?;
    Ok(sol.objective)
}

/// Computes the (integral) edge cover number by exhaustive search over edge
/// subsets, smallest subsets first.
///
/// This is exponential in the number of edges and intended for the tiny
/// instances FDB produces (and for cross-checking the LP in tests).  Returns
/// `None` if no cover exists.
pub fn integral_edge_cover(instance: &CoverInstance) -> Option<usize> {
    if instance.num_vertices == 0 {
        return Some(0);
    }
    if !instance.is_coverable() {
        return None;
    }
    let n = instance.edges.len();
    // Represent vertex sets as bitmasks; instances here have < 64 vertices.
    assert!(
        instance.num_vertices <= 64,
        "integral cover limited to 64 vertices"
    );
    let full: u64 = if instance.num_vertices == 64 {
        u64::MAX
    } else {
        (1u64 << instance.num_vertices) - 1
    };
    let masks: Vec<u64> = instance
        .edges
        .iter()
        .map(|e| {
            e.iter()
                .filter(|&&v| v < instance.num_vertices)
                .fold(0u64, |m, &v| m | (1 << v))
        })
        .collect();
    (1..=n).find(|&size| search_cover(&masks, full, 0, size, 0))
}

fn search_cover(masks: &[u64], full: u64, covered: u64, remaining: usize, start: usize) -> bool {
    if covered == full {
        return true;
    }
    if remaining == 0 || start >= masks.len() {
        return false;
    }
    for i in start..masks.len() {
        if search_cover(masks, full, covered | masks[i], remaining - 1, i + 1) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn empty_instance_has_zero_cover() {
        let inst = CoverInstance::new(0);
        assert!(close(fractional_edge_cover(&inst).unwrap(), 0.0));
        assert_eq!(integral_edge_cover(&inst), Some(0));
    }

    #[test]
    fn single_edge_covers_everything() {
        let mut inst = CoverInstance::new(3);
        inst.add_edge(vec![0, 1, 2]);
        assert!(close(fractional_edge_cover(&inst).unwrap(), 1.0));
        assert_eq!(integral_edge_cover(&inst), Some(1));
    }

    #[test]
    fn chain_of_two_relations() {
        // Path A - B - C with R(A,B), S(B,C): both needed integrally and
        // fractionally (cover number 2... fractional optimum is also 2
        // because A is only in R and C only in S? no: A only in R forces
        // x_R >= 1, C only in S forces x_S >= 1, so fractional = 2).
        let mut inst = CoverInstance::new(3);
        inst.add_edge(vec![0, 1]);
        inst.add_edge(vec![1, 2]);
        assert!(close(fractional_edge_cover(&inst).unwrap(), 2.0));
        assert_eq!(integral_edge_cover(&inst), Some(2));
    }

    #[test]
    fn triangle_shows_fractional_gap() {
        // Triangle hypergraph: fractional 1.5, integral 2.
        let mut inst = CoverInstance::new(3);
        inst.add_edge(vec![0, 1]);
        inst.add_edge(vec![1, 2]);
        inst.add_edge(vec![0, 2]);
        assert!(close(fractional_edge_cover(&inst).unwrap(), 1.5));
        assert_eq!(integral_edge_cover(&inst), Some(2));
    }

    #[test]
    fn uncoverable_vertex_is_an_error() {
        let mut inst = CoverInstance::new(2);
        inst.add_edge(vec![0]);
        assert!(!inst.is_coverable());
        assert!(fractional_edge_cover(&inst).is_err());
        assert_eq!(integral_edge_cover(&inst), None);
    }

    #[test]
    fn fractional_never_exceeds_integral() {
        // A few ad-hoc instances.
        let instances = vec![
            {
                let mut i = CoverInstance::new(4);
                i.add_edge(vec![0, 1]);
                i.add_edge(vec![1, 2]);
                i.add_edge(vec![2, 3]);
                i.add_edge(vec![3, 0]);
                i
            },
            {
                let mut i = CoverInstance::new(5);
                i.add_edge(vec![0, 1, 2]);
                i.add_edge(vec![2, 3]);
                i.add_edge(vec![3, 4]);
                i.add_edge(vec![4, 0]);
                i
            },
        ];
        for inst in instances {
            let frac = fractional_edge_cover(&inst).unwrap();
            let int = integral_edge_cover(&inst).unwrap() as f64;
            assert!(frac <= int + 1e-6, "fractional {frac} > integral {int}");
        }
    }

    #[test]
    fn duplicated_edges_do_not_change_the_cover() {
        let mut inst = CoverInstance::new(2);
        inst.add_edge(vec![0, 1]);
        inst.add_edge(vec![0, 1]);
        inst.add_edge(vec![0, 1]);
        assert!(close(fractional_edge_cover(&inst).unwrap(), 1.0));
        assert_eq!(integral_edge_cover(&inst), Some(1));
    }
}
