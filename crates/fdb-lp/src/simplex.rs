//! Dense two-phase primal simplex.
//!
//! The solver targets the tiny linear programs produced by FDB's cost model
//! (fractional edge covers over root-to-leaf paths of an f-tree), so it
//! favours clarity over sparse-matrix sophistication: the constraint system
//! is kept as a dense tableau, pivots use Bland's rule to guarantee
//! termination, and all arithmetic is `f64` with a small absolute tolerance.
//!
//! The entry point is [`LinearProgram::minimize`] (or
//! [`LinearProgram::maximize`], which negates the objective).

use fdb_common::{FdbError, Result};

/// Numerical tolerance used for pivoting and feasibility decisions.
const EPS: f64 = 1e-9;

/// The sense of a linear constraint `aᵀx {≥, ≤, =} b`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConstraintSense {
    /// `aᵀx ≥ b`
    GreaterEq,
    /// `aᵀx ≤ b`
    LessEq,
    /// `aᵀx = b`
    Equal,
}

#[derive(Clone, Debug)]
struct Constraint {
    coeffs: Vec<f64>,
    sense: ConstraintSense,
    rhs: f64,
}

/// A linear program over non-negative variables.
///
/// ```
/// use fdb_lp::{LinearProgram, ConstraintSense};
///
/// // minimise x0 + x1  subject to  x0 + x1 >= 1, x0 >= 0.25
/// let mut lp = LinearProgram::new(2);
/// lp.set_objective(vec![1.0, 1.0]);
/// lp.add_constraint(vec![1.0, 1.0], ConstraintSense::GreaterEq, 1.0);
/// lp.add_constraint(vec![1.0, 0.0], ConstraintSense::GreaterEq, 0.25);
/// let sol = lp.minimize().unwrap();
/// assert!((sol.objective - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct LinearProgram {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

/// An optimal solution to a [`LinearProgram`].
#[derive(Clone, Debug)]
pub struct Solution {
    /// Optimal objective value (in the direction that was requested).
    pub objective: f64,
    /// Optimal assignment of the variables.
    pub values: Vec<f64>,
}

impl LinearProgram {
    /// Creates a program over `num_vars` non-negative variables with a zero
    /// objective and no constraints.
    pub fn new(num_vars: usize) -> Self {
        LinearProgram {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient vector (length must equal the number of
    /// variables; missing entries are treated as zero, extras are ignored).
    pub fn set_objective(&mut self, coeffs: Vec<f64>) {
        let mut c = coeffs;
        c.resize(self.num_vars, 0.0);
        self.objective = c;
    }

    /// Adds the constraint `coeffs · x  sense  rhs`.
    pub fn add_constraint(&mut self, coeffs: Vec<f64>, sense: ConstraintSense, rhs: f64) {
        let mut c = coeffs;
        c.resize(self.num_vars, 0.0);
        self.constraints.push(Constraint {
            coeffs: c,
            sense,
            rhs,
        });
    }

    /// Minimises the objective.  Returns an error if the program is
    /// infeasible or unbounded.
    pub fn minimize(&self) -> Result<Solution> {
        self.solve(false)
    }

    /// Maximises the objective.  Returns an error if the program is
    /// infeasible or unbounded.
    pub fn maximize(&self) -> Result<Solution> {
        let mut sol = self.solve(true)?;
        sol.objective = -sol.objective;
        Ok(sol)
    }

    /// Core solver; `negate_objective` turns maximisation into minimisation.
    fn solve(&self, negate_objective: bool) -> Result<Solution> {
        // Standard form: minimise cᵀx subject to Ax = b, x ≥ 0, b ≥ 0,
        // obtained by adding one slack/surplus variable per inequality and
        // one artificial variable per row that lacks an obvious basic column.
        let n = self.num_vars;
        let m = self.constraints.len();

        if m == 0 {
            // With no constraints and non-negative variables the optimum of a
            // minimisation is attained at x = 0 unless some objective
            // coefficient is negative (then the LP is unbounded below).
            let c: Vec<f64> = self
                .objective
                .iter()
                .map(|&v| if negate_objective { -v } else { v })
                .collect();
            if c.iter().any(|&ci| ci < -EPS) {
                return Err(FdbError::UnboundedProgram);
            }
            return Ok(Solution {
                objective: 0.0,
                values: vec![0.0; n],
            });
        }

        // Count slack columns.
        let num_slacks = self
            .constraints
            .iter()
            .filter(|c| c.sense != ConstraintSense::Equal)
            .count();
        let total_cols = n + num_slacks + m; // decision + slack + artificial
        let art_start = n + num_slacks;

        // Build tableau rows: [A | S | I][x s a]ᵀ = b with b ≥ 0.
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut rhs: Vec<f64> = Vec::with_capacity(m);
        let mut basis: Vec<usize> = vec![0; m];
        let mut slack_idx = 0usize;

        for (i, con) in self.constraints.iter().enumerate() {
            let mut row = vec![0.0; total_cols];
            let mut b = con.rhs;
            let mut coeffs = con.coeffs.clone();
            let mut sense = con.sense;
            if b < 0.0 {
                // Normalise to non-negative right-hand side.
                b = -b;
                for c in coeffs.iter_mut() {
                    *c = -*c;
                }
                sense = match sense {
                    ConstraintSense::GreaterEq => ConstraintSense::LessEq,
                    ConstraintSense::LessEq => ConstraintSense::GreaterEq,
                    ConstraintSense::Equal => ConstraintSense::Equal,
                };
            }
            row[..n].copy_from_slice(&coeffs[..n]);
            match sense {
                ConstraintSense::LessEq => {
                    row[n + slack_idx] = 1.0;
                    slack_idx += 1;
                }
                ConstraintSense::GreaterEq => {
                    row[n + slack_idx] = -1.0;
                    slack_idx += 1;
                }
                ConstraintSense::Equal => {}
            }
            // Every row gets an artificial variable; phase one drives them
            // out.  (Rows with a positive slack could reuse the slack as the
            // initial basis, but always adding artificials keeps the code
            // uniform and the programs here are tiny.)
            row[art_start + i] = 1.0;
            basis[i] = art_start + i;
            rows.push(row);
            rhs.push(b);
        }

        // Phase one: minimise the sum of artificial variables.
        let mut phase1_cost = vec![0.0; total_cols];
        for artificial_cost in phase1_cost.iter_mut().skip(art_start) {
            *artificial_cost = 1.0;
        }
        let status = run_simplex(&mut rows, &mut rhs, &mut basis, &phase1_cost, total_cols);
        if status == SimplexStatus::Unbounded {
            // Phase one is never unbounded (objective bounded below by 0);
            // treat defensively as infeasible.
            return Err(FdbError::InfeasibleProgram);
        }
        let phase1_obj: f64 = basis
            .iter()
            .enumerate()
            .map(|(i, &b)| if b >= art_start { rhs[i] } else { 0.0 })
            .sum();
        if phase1_obj > 1e-7 {
            return Err(FdbError::InfeasibleProgram);
        }

        // Drive any artificial variables still in the basis (at value zero)
        // out of it, or drop their rows if they are redundant.
        for i in 0..m {
            if basis[i] >= art_start {
                if let Some(j) = (0..art_start).find(|&j| rows[i][j].abs() > EPS) {
                    pivot(&mut rows, &mut rhs, &mut basis, i, j);
                }
                // If no pivot column exists the row is all-zero (redundant);
                // leaving the artificial basic at value 0 is harmless because
                // its column is excluded from entering decisions below.
            }
        }

        // Phase two: original objective, artificial columns forbidden.
        let mut cost = vec![0.0; total_cols];
        for (j, cost_j) in cost.iter_mut().enumerate().take(n) {
            *cost_j = if negate_objective {
                -self.objective[j]
            } else {
                self.objective[j]
            };
        }
        let status = run_simplex(&mut rows, &mut rhs, &mut basis, &cost, art_start);
        if status == SimplexStatus::Unbounded {
            return Err(FdbError::UnboundedProgram);
        }

        let mut values = vec![0.0; n];
        for (i, &b) in basis.iter().enumerate() {
            if b < n {
                values[b] = rhs[i];
            }
        }
        let objective: f64 = values
            .iter()
            .zip(&self.objective)
            .map(|(&x, &c)| x * if negate_objective { -c } else { c })
            .sum();
        Ok(Solution { objective, values })
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SimplexStatus {
    Optimal,
    Unbounded,
}

/// Runs the primal simplex on the tableau until optimality, considering only
/// columns `< allowed_cols` as candidates for entering the basis.
fn run_simplex(
    rows: &mut [Vec<f64>],
    rhs: &mut [f64],
    basis: &mut [usize],
    cost: &[f64],
    allowed_cols: usize,
) -> SimplexStatus {
    let m = rows.len();
    loop {
        // Reduced costs: c_j - c_Bᵀ B⁻¹ A_j.  The tableau is kept in the
        // basis-reduced form, so the reduced cost is computed row-wise.
        let mut entering = None;
        for j in 0..allowed_cols {
            if basis.contains(&j) {
                continue;
            }
            let mut reduced = cost[j];
            for i in 0..m {
                reduced -= cost[basis[i]] * rows[i][j];
            }
            if reduced < -EPS {
                // Bland's rule: first improving column by index.
                entering = Some(j);
                break;
            }
        }
        let Some(entering) = entering else {
            return SimplexStatus::Optimal;
        };

        // Ratio test, Bland's rule on ties (smallest basis index).
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = rows[i][entering];
            if a > EPS {
                let ratio = rhs[i] / a;
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leaving.is_none_or(|l| basis[i] < basis[l]));
                if better {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(leaving) = leaving else {
            return SimplexStatus::Unbounded;
        };
        pivot(rows, rhs, basis, leaving, entering);
    }
}

/// Pivots the tableau so that column `col` becomes basic in row `row`.
fn pivot(rows: &mut [Vec<f64>], rhs: &mut [f64], basis: &mut [usize], row: usize, col: usize) {
    let m = rows.len();
    let pivot_val = rows[row][col];
    debug_assert!(pivot_val.abs() > EPS, "pivot on a (near) zero element");
    let inv = 1.0 / pivot_val;
    for v in rows[row].iter_mut() {
        *v *= inv;
    }
    rhs[row] *= inv;
    for i in 0..m {
        if i == row {
            continue;
        }
        let factor = rows[i][col];
        if factor.abs() <= EPS {
            continue;
        }
        let pivot_row = rows[row].clone();
        for (v, p) in rows[i].iter_mut().zip(pivot_row.iter()) {
            *v -= factor * p;
        }
        rhs[i] -= factor * rhs[row];
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_cover_lp() {
        // min x0 + x1 s.t. x0 + x1 >= 1, x0 >= 0, x1 >= 0: optimum 1.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintSense::GreaterEq, 1.0);
        let sol = lp.minimize().unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn triangle_fractional_cover_is_three_halves() {
        // The triangle query R(A,B), S(B,C), T(A,C): covering all three
        // attributes needs total weight 3/2 fractionally (1/2 each).
        let mut lp = LinearProgram::new(3);
        lp.set_objective(vec![1.0, 1.0, 1.0]);
        lp.add_constraint(vec![1.0, 0.0, 1.0], ConstraintSense::GreaterEq, 1.0); // A
        lp.add_constraint(vec![1.0, 1.0, 0.0], ConstraintSense::GreaterEq, 1.0); // B
        lp.add_constraint(vec![0.0, 1.0, 1.0], ConstraintSense::GreaterEq, 1.0); // C
        let sol = lp.minimize().unwrap();
        assert_close(sol.objective, 1.5);
        for v in &sol.values {
            assert_close(*v, 0.5);
        }
    }

    #[test]
    fn maximization_with_upper_bounds() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2: optimum at (2, 2) = 10.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![3.0, 2.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintSense::LessEq, 4.0);
        lp.add_constraint(vec![1.0, 0.0], ConstraintSense::LessEq, 2.0);
        let sol = lp.maximize().unwrap();
        assert_close(sol.objective, 10.0);
        assert_close(sol.values[0], 2.0);
        assert_close(sol.values[1], 2.0);
    }

    #[test]
    fn equality_constraints_are_respected() {
        // min x + y s.t. x + y = 3, x - y = 1 → x = 2, y = 1.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintSense::Equal, 3.0);
        lp.add_constraint(vec![1.0, -1.0], ConstraintSense::Equal, 1.0);
        let sol = lp.minimize().unwrap();
        assert_close(sol.objective, 3.0);
        assert_close(sol.values[0], 2.0);
        assert_close(sol.values[1], 1.0);
    }

    #[test]
    fn infeasible_program_is_reported() {
        // x <= 1 and x >= 2 cannot both hold.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![1.0]);
        lp.add_constraint(vec![1.0], ConstraintSense::LessEq, 1.0);
        lp.add_constraint(vec![1.0], ConstraintSense::GreaterEq, 2.0);
        assert_eq!(lp.minimize().unwrap_err(), FdbError::InfeasibleProgram);
    }

    #[test]
    fn unbounded_program_is_reported() {
        // max x with only x >= 1: unbounded above.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![1.0]);
        lp.add_constraint(vec![1.0], ConstraintSense::GreaterEq, 1.0);
        assert_eq!(lp.maximize().unwrap_err(), FdbError::UnboundedProgram);
    }

    #[test]
    fn no_constraints_minimum_is_zero() {
        let mut lp = LinearProgram::new(3);
        lp.set_objective(vec![1.0, 2.0, 3.0]);
        let sol = lp.minimize().unwrap();
        assert_close(sol.objective, 0.0);
        // And an unbounded no-constraint program is detected.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![-1.0]);
        assert_eq!(lp.minimize().unwrap_err(), FdbError::UnboundedProgram);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // min x s.t. -x <= -2  (i.e. x >= 2).
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![1.0]);
        lp.add_constraint(vec![-1.0], ConstraintSense::LessEq, -2.0);
        let sol = lp.minimize().unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn degenerate_program_terminates() {
        // A classic degenerate instance; Bland's rule must avoid cycling.
        let mut lp = LinearProgram::new(4);
        lp.set_objective(vec![-0.75, 150.0, -0.02, 6.0]);
        lp.add_constraint(vec![0.25, -60.0, -0.04, 9.0], ConstraintSense::LessEq, 0.0);
        lp.add_constraint(vec![0.5, -90.0, -0.02, 3.0], ConstraintSense::LessEq, 0.0);
        lp.add_constraint(vec![0.0, 0.0, 1.0, 0.0], ConstraintSense::LessEq, 1.0);
        let sol = lp.minimize().unwrap();
        assert_close(sol.objective, -0.05);
    }

    #[test]
    fn redundant_equality_rows_are_handled() {
        // Duplicate equality rows leave a zero row after phase one.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 2.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintSense::Equal, 2.0);
        lp.add_constraint(vec![2.0, 2.0], ConstraintSense::Equal, 4.0);
        let sol = lp.minimize().unwrap();
        assert_close(sol.objective, 2.0);
        assert_close(sol.values[0], 2.0);
    }
}
