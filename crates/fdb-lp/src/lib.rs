//! A small, dependency-free linear-programming solver.
//!
//! The FDB paper computes the parameter `s(T)` of an f-tree as the maximum
//! *fractional edge cover number* over its root-to-leaf paths, and solves the
//! corresponding covering linear programs with GLPK.  GLPK is not available
//! here, so this crate provides the substrate from scratch: a dense,
//! two-phase primal simplex solver that is more than sufficient for the tiny
//! programs FDB generates (a handful of variables — one per relation on the
//! path — and a handful of constraints — one per attribute class on the
//! path).
//!
//! The crate exposes two layers:
//!
//! * [`LinearProgram`] / [`Solution`]: a general `min cᵀx s.t. Ax {≥,≤,=} b,
//!   x ≥ 0` solver, solved by the two-phase primal simplex in [`simplex`].
//! * [`cover::fractional_edge_cover`] and [`cover::integral_edge_cover`]:
//!   the specific hypergraph edge-cover numbers used for `s(T)`.

#![warn(missing_docs)]

pub mod cover;
pub mod simplex;

pub use cover::{fractional_edge_cover, integral_edge_cover, CoverInstance};
pub use simplex::{ConstraintSense, LinearProgram, Solution};
