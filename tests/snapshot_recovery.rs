//! Chaos suite: durable snapshots and hot swap under fault injection.
//!
//! The durability contract pinned here:
//!
//! * a snapshot that was bit-flipped **in any section** or truncated at any
//!   framing boundary is rejected on load with a structured error
//!   (`SnapshotCorrupt` / `SnapshotVersionMismatch`) — never a panic, never
//!   a partially-loaded representation — and a good file next to the torn
//!   one keeps loading (torn-write recovery);
//! * the `snapshot.write` / `snapshot.read` failpoints drive write- and
//!   read-side faults deterministically: a faulted save leaves no file (and
//!   no `.tmp` litter) behind, a faulted load leaves the caller's state
//!   untouched;
//! * hot swap ([`FdbServer::replace`]) under concurrent serving at 1–8
//!   workers is **epoch-correct**: every in-flight request's result is
//!   store-identical to sequential evaluation on either the old or the new
//!   representation (never a blend), every post-swap request evaluates on
//!   the new one (zero stale plans), and a panic injected mid-swap through
//!   the `db.swap` failpoint leaves the server serving the old epoch.
//!
//! Compiled only with `--features fault-injection`.
#![cfg(feature = "fault-injection")]

use fdb::common::{
    AggregateHead, ComparisonOp, ConstSelection, ExecCtx, FaultAction, FaultPlan, FdbError,
    QueryLimits, RelId,
};
use fdb::datagen::{populate, random_query, random_schema, ValueDistribution};
use fdb::engine::snapshot::{load_rep, load_rep_ctx, save_rep, save_rep_ctx};
use fdb::engine::{
    FactorisedQuery, FdbEngine, FdbServer, RepId, ServeOutcome, ServeRequest, SharedDatabase,
};
use fdb::frep::snapshot::section_boundaries;
use fdb::frep::FRep;
use fdb::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Worker counts every chaos test sweeps over.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A small deterministic factorised result to snapshot and serve.
fn seeded_rep(seed: u64) -> FRep {
    let mut rng = StdRng::seed_from_u64(0x00FA_017E ^ seed);
    let relations = 2;
    let attributes = 5;
    let catalog = random_schema(&mut rng, relations, attributes);
    let rels: Vec<RelId> = catalog.rels().collect();
    let db = populate(&mut rng, &catalog, 25, 6, ValueDistribution::Uniform);
    let query = random_query(&mut rng, &catalog, &rels, 1);
    FdbEngine::new()
        .evaluate_flat(&db, &query)
        .expect("FDB evaluates the base query")
        .result
}

/// A unique scratch directory per call, removed by the test on success.
fn scratch_dir(label: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let unique = NEXT.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!(
        "fdb-recovery-{}-{label}-{unique}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Asserts that loading `bytes` (written to a scratch file) reports a
/// structured snapshot error — corruption or version skew, never a panic
/// and never a successfully "loaded" representation.
fn assert_load_rejects(path: &std::path::Path, bytes: &[u8], context: &str) {
    fs::write(path, bytes).unwrap();
    let outcome = catch_unwind(AssertUnwindSafe(|| load_rep(path)));
    match outcome {
        Ok(Err(FdbError::SnapshotCorrupt { .. } | FdbError::SnapshotVersionMismatch { .. })) => {}
        Ok(other) => panic!("{context}: expected a structured rejection, got {other:?}"),
        Err(_) => panic!("{context}: loading corrupt bytes panicked"),
    }
}

#[test]
fn every_section_survives_neither_flips_nor_boundary_truncation() {
    let dir = scratch_dir("sweep");
    let good_path = dir.join("good.fdbs");
    let torn_path = dir.join("torn.fdbs");
    let rep = seeded_rep(3);
    save_rep(&rep, &good_path).unwrap();
    let bytes = fs::read(&good_path).unwrap();

    // One flipped byte anywhere — swept exhaustively through the *file*
    // path, so the per-section checksums and the structural validator are
    // exercised exactly as a production load would hit them.
    for at in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[at] ^= 0x40;
        assert_load_rejects(&torn_path, &bad, &format!("flip at byte {at}"));
    }

    // Torn writes: truncation at every framing boundary (header end and
    // each section end), one byte before it, and one byte after it.
    let boundaries = section_boundaries(&bytes).unwrap();
    assert_eq!(
        *boundaries.last().unwrap(),
        bytes.len(),
        "the last boundary closes the file"
    );
    for &boundary in &boundaries {
        for cut in [boundary.saturating_sub(1), boundary, boundary + 1] {
            if cut >= bytes.len() {
                continue;
            }
            assert_load_rejects(&torn_path, &bytes[..cut], &format!("truncate at {cut}"));
        }
    }

    // Recovery: the good file next to the torn one is untouched and loads.
    let recovered = load_rep(&good_path).unwrap();
    assert!(
        recovered.store_identical(&rep),
        "the good snapshot survives"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_write_faults_leave_no_file_and_read_faults_leave_state_untouched() {
    let dir = scratch_dir("failpoints");
    let path = dir.join("rep.fdbs");
    let rep = seeded_rep(5);

    // A panic at the write failpoint: nothing reaches the filesystem, not
    // even a temporary.
    let panicking = ExecCtx::new(&QueryLimits::unlimited().with_faults(
        FaultPlan::new().on("snapshot.write", FaultAction::Panic("torn save".into())),
    ));
    let outcome = catch_unwind(AssertUnwindSafe(|| save_rep_ctx(&rep, &path, &panicking)));
    assert!(outcome.is_err(), "the injected write panic propagates");
    assert!(
        fs::read_dir(&dir).unwrap().next().is_none(),
        "a faulted save leaves no file and no .tmp litter"
    );

    // Budget pressure at the write failpoint: a structured error, still no
    // file.
    let pressured =
        ExecCtx::new(&QueryLimits::unlimited().with_budget(100).with_faults(
            FaultPlan::new().on("snapshot.write", FaultAction::BudgetPressure(10_000)),
        ));
    assert_eq!(
        save_rep_ctx(&rep, &path, &pressured),
        Err(FdbError::BudgetExceeded { limit: 100 }),
        "write-side budget faults report through the error channel"
    );
    assert!(!path.exists(), "no partial snapshot after a budget fault");

    // A clean save, then a faulted load: the error is structured and the
    // file is untouched for the retry.
    save_rep(&rep, &path).unwrap();
    let read_faulted =
        ExecCtx::new(&QueryLimits::unlimited().with_budget(50).with_faults(
            FaultPlan::new().on("snapshot.read", FaultAction::BudgetPressure(10_000)),
        ));
    assert_eq!(
        load_rep_ctx(&path, &read_faulted).err(),
        Some(FdbError::BudgetExceeded { limit: 50 }),
        "read-side faults report through the error channel"
    );
    let retried = load_rep(&path).unwrap();
    assert!(
        retried.store_identical(&rep),
        "the retry loads the snapshot"
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// The serving fixture for the hot-swap tests: a server over one slot whose
/// old representation has tuples and whose replacement is the emptied
/// result of an unsatisfiable selection — so old- and new-epoch results are
/// unmistakably different, while both representations carry the query's
/// attributes.
struct SwapFixture {
    server: FdbServer,
    id: RepId,
    old: FRep,
    new: FRep,
    rep_query: FactorisedQuery,
    count_query: ServeRequest,
}

fn swap_fixture(threads: usize) -> SwapFixture {
    let old = seeded_rep(7);
    let attr = old.visible_attrs()[0];
    let engine = FdbEngine::new();
    let new = engine
        .evaluate_factorised(
            &old,
            &FactorisedQuery::default().with_const_selection(ConstSelection {
                attr,
                op: ComparisonOp::Gt,
                value: Value::new(1_000_000),
            }),
        )
        .expect("the emptying selection evaluates")
        .result;
    assert!(new.represents_empty(), "the replacement represents ∅");
    assert!(
        old.tuple_count() > 0,
        "precondition: the old epoch has tuples to tell the epochs apart"
    );

    let mut shared = SharedDatabase::new();
    let id = shared.insert("base", old.clone()).expect("unique name");
    let server = FdbServer::new(engine, Arc::new(shared), threads);
    let rep_query = FactorisedQuery::default().with_const_selection(ConstSelection {
        attr,
        op: ComparisonOp::Ge,
        value: Value::new(0),
    });
    let count_query =
        ServeRequest::new(id, FactorisedQuery::default(), Some(AggregateHead::count()));
    SwapFixture {
        server,
        id,
        old,
        new,
        rep_query,
        count_query,
    }
}

/// Which epoch an outcome evaluated on: store-identical to sequential
/// evaluation on the old representation, on the new one, or (fatally)
/// neither — a blend would mean the swap was observed mid-request.
fn epoch_of(
    outcome: &Result<ServeOutcome, FdbError>,
    request: &ServeRequest,
    fixture: &SwapFixture,
    context: &str,
) -> &'static str {
    let engine = FdbEngine::new();
    match (outcome, &request.aggregate) {
        (Ok(ServeOutcome::Rep(got)), None) => {
            let want_old = engine
                .evaluate_factorised(&fixture.old, &request.query)
                .unwrap();
            let want_new = engine
                .evaluate_factorised(&fixture.new, &request.query)
                .unwrap();
            if got.result.store_identical(&want_old.result) {
                "old"
            } else if got.result.store_identical(&want_new.result) {
                "new"
            } else {
                panic!("{context}: result matches neither epoch's sequential evaluation")
            }
        }
        (Ok(ServeOutcome::Aggregate(got)), Some(head)) => {
            let want_old = engine
                .evaluate_factorised_aggregate(&fixture.old, &request.query, head)
                .unwrap();
            let want_new = engine
                .evaluate_factorised_aggregate(&fixture.new, &request.query, head)
                .unwrap();
            assert_ne!(
                want_old.result, want_new.result,
                "{context}: the fixture must tell the epochs apart"
            );
            if got.result == want_old.result {
                "old"
            } else if got.result == want_new.result {
                "new"
            } else {
                panic!("{context}: aggregate matches neither epoch")
            }
        }
        (outcome, _) => panic!("{context}: unexpected outcome {outcome:?}"),
    }
}

#[test]
fn hot_swap_under_concurrent_serving_is_epoch_correct_with_zero_stale_plans() {
    for threads in THREAD_COUNTS {
        let fixture = swap_fixture(threads);
        let server = &fixture.server;

        // Warm the cache on the old epoch so the swap has plans to drop.
        let warm = ServeRequest::new(fixture.id, fixture.rep_query.clone(), None);
        assert_eq!(
            epoch_of(&server.serve_one(&warm), &warm, &fixture, "warm-up"),
            "old"
        );
        let cached_before = server.cache().len();
        assert!(cached_before >= 1, "{threads} workers: the warm-up cached");

        // A mixed batch races the swap.
        let requests: Vec<ServeRequest> = (0..24)
            .map(|i| {
                if i % 3 == 0 {
                    fixture.count_query.clone()
                } else {
                    ServeRequest::new(fixture.id, fixture.rep_query.clone(), None)
                }
            })
            .collect();
        let outcomes = std::thread::scope(|scope| {
            let batch = requests.clone();
            let serving = scope.spawn(move || server.serve_batch(batch));
            std::thread::sleep(Duration::from_millis(1));
            server
                .replace(fixture.id, fixture.new.clone())
                .expect("the swap publishes");
            serving
                .join()
                .expect("the serving thread survives the swap")
        });

        // Every in-flight result is exactly one epoch's result — the swap
        // is atomic from the requests' point of view.
        for (i, (request, outcome)) in requests.iter().zip(&outcomes).enumerate() {
            epoch_of(
                outcome,
                request,
                &fixture,
                &format!("{threads} workers, in-flight request {i}"),
            );
        }

        // The old tree's plans were dropped and counted.
        let stats = server.stats();
        assert!(
            stats.plan_cache_invalidations >= 1,
            "{threads} workers: the warm-up plan was invalidated"
        );
        assert!(
            stats.counters_table().contains("invalidations"),
            "{threads} workers: invalidations surface in the counters table"
        );
        assert_eq!(server.db().epoch(fixture.id), Some(1), "{threads} workers");

        // Zero stale plans: every post-swap request — including the exact
        // shape that was cached on the old epoch — evaluates on the new
        // representation.
        let post: Vec<ServeRequest> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    ServeRequest::new(fixture.id, fixture.rep_query.clone(), None)
                } else {
                    fixture.count_query.clone()
                }
            })
            .collect();
        for (i, (request, outcome)) in post
            .iter()
            .zip(&server.serve_batch(post.clone()))
            .enumerate()
        {
            assert_eq!(
                epoch_of(
                    outcome,
                    request,
                    &fixture,
                    &format!("{threads} workers, post-swap request {i}")
                ),
                "new",
                "{threads} workers: post-swap request {i} must see the new epoch"
            );
        }
    }
}

#[test]
fn a_panic_injected_mid_swap_leaves_the_server_on_the_old_epoch() {
    for threads in THREAD_COUNTS {
        let fixture = swap_fixture(threads);
        let server = &fixture.server;
        let warm = ServeRequest::new(fixture.id, fixture.rep_query.clone(), None);
        server.serve_one(&warm).expect("serves before the swap");
        let cached_before = server.cache().len();

        let ctx = ExecCtx::new(
            &QueryLimits::unlimited()
                .with_faults(FaultPlan::new().on("db.swap", FaultAction::Panic("mid-swap".into()))),
        );
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            server.replace_ctx(fixture.id, fixture.new.clone(), &ctx)
        }));
        assert!(attempt.is_err(), "{threads} workers: the swap panic fires");

        // Nothing was published: same epoch, same content, same plans.
        assert_eq!(server.db().epoch(fixture.id), Some(0), "{threads} workers");
        assert_eq!(
            server.cache().len(),
            cached_before,
            "{threads} workers: no plan was invalidated by the failed swap"
        );
        assert_eq!(
            server.stats().plan_cache_invalidations,
            0,
            "{threads} workers"
        );
        assert_eq!(
            epoch_of(
                &server.serve_one(&warm),
                &warm,
                &fixture,
                &format!("{threads} workers, post-panic serve")
            ),
            "old",
            "{threads} workers: the server keeps serving the old epoch"
        );

        // A governed-but-clean retry succeeds.
        let clean = ExecCtx::new(&QueryLimits::unlimited());
        server
            .replace_ctx(fixture.id, fixture.new.clone(), &clean)
            .expect("the retry publishes");
        assert_eq!(server.db().epoch(fixture.id), Some(1), "{threads} workers");
        assert_eq!(
            epoch_of(
                &server.serve_one(&warm),
                &warm,
                &fixture,
                &format!("{threads} workers, post-retry serve")
            ),
            "new"
        );
    }
}

#[test]
fn a_snapshot_round_trip_survives_a_hot_swap_cycle() {
    // Durability and hot swap composed: save the old epoch, swap the live
    // slot, then restore the snapshot into the slot — the server is back to
    // serving the original content, on a new epoch, with no stale plans.
    for threads in [1usize, 4] {
        let dir = scratch_dir("cycle");
        let path = dir.join("old.fdbs");
        let fixture = swap_fixture(threads);
        let server = &fixture.server;
        save_rep(&fixture.old, &path).unwrap();

        server
            .replace(fixture.id, fixture.new.clone())
            .expect("swap to the empty representation");
        let restored = load_rep(&path).unwrap();
        assert!(restored.store_identical(&fixture.old));
        server
            .replace(fixture.id, restored)
            .expect("swap back to the restored snapshot");
        assert_eq!(server.db().epoch(fixture.id), Some(2), "{threads} workers");

        let warm = ServeRequest::new(fixture.id, fixture.rep_query.clone(), None);
        assert_eq!(
            epoch_of(
                &server.serve_one(&warm),
                &warm,
                &fixture,
                &format!("{threads} workers, restored serve")
            ),
            "old",
            "{threads} workers: the restored snapshot serves the original content"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
