//! Cross-engine equivalence: the factorised engine (FDB) and the flat
//! relational baseline (RDB) must represent exactly the same query results,
//! on randomly generated databases and queries.

use fdb::common::{Query, RelId, Value};
use fdb::datagen::{populate, random_query, random_schema, ValueDistribution};
use fdb::engine::FdbEngine;
use fdb::frep::materialize;
use fdb::relation::{Database, RdbEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Canonical (attribute-sorted) set of result tuples from the RDB engine.
fn rdb_tuples(db: &Database, query: &Query) -> BTreeSet<Vec<Value>> {
    let result = RdbEngine::new().evaluate(db, query).expect("RDB evaluates");
    let mut attrs = result.attrs().to_vec();
    attrs.sort_unstable();
    result
        .reorder_columns(&attrs)
        .expect("same attributes")
        .tuple_set()
}

/// Generates a random database and query from a seed, small enough for the
/// flat baseline to enumerate comfortably.
fn scenario(
    seed: u64,
    relations: usize,
    attributes: usize,
    tuples: usize,
    domain: u64,
    k: usize,
) -> (Database, Query) {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = random_schema(&mut rng, relations, attributes);
    let rels: Vec<RelId> = catalog.rels().collect();
    let distribution = if seed.is_multiple_of(2) {
        ValueDistribution::Uniform
    } else {
        ValueDistribution::Zipf(1.0)
    };
    let db = populate(&mut rng, &catalog, tuples, domain, distribution);
    let query = random_query(&mut rng, &catalog, &rels, k);
    (db, query)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// The factorised result enumerates exactly the tuples of the flat join.
    #[test]
    fn fdb_flat_evaluation_matches_rdb(
        seed in 0u64..10_000,
        relations in 1usize..4,
        extra_attrs in 0usize..5,
        tuples in 1usize..60,
        domain in 2u64..12,
        k in 0usize..4,
    ) {
        let attributes = relations + extra_attrs;
        let k = k.min(attributes.saturating_sub(1));
        let (db, query) = scenario(seed, relations, attributes, tuples, domain, k);
        let out = FdbEngine::new().evaluate_flat(&db, &query).expect("FDB evaluates");
        out.result.validate().expect("valid representation");
        let fdb_tuples = materialize(&out.result).expect("enumeration works").tuple_set();
        prop_assert_eq!(fdb_tuples, rdb_tuples(&db, &query));
        // The declared tuple count matches the enumeration.
        prop_assert_eq!(out.stats.result_tuples as usize, out.result.tuple_count() as usize);
    }

    /// The operator-only evaluation pipeline (load relations as trivially
    /// factorised inputs, run an f-plan) agrees with the direct construction.
    #[test]
    fn operator_pipeline_matches_direct_construction(
        seed in 0u64..10_000,
        relations in 1usize..3,
        extra_attrs in 0usize..3,
        tuples in 1usize..25,
        domain in 2u64..8,
        k in 0usize..3,
    ) {
        let attributes = relations + extra_attrs;
        let k = k.min(attributes.saturating_sub(1));
        let (db, query) = scenario(seed, relations, attributes, tuples, domain, k);
        let direct = FdbEngine::new().evaluate_flat(&db, &query).expect("direct evaluation");
        let via_ops = FdbEngine::new()
            .evaluate_flat_via_operators(&db, &query)
            .expect("operator evaluation");
        via_ops.result.validate().expect("valid representation");
        prop_assert_eq!(
            materialize(&direct.result).expect("enumerate").tuple_set(),
            materialize(&via_ops.result).expect("enumerate").tuple_set()
        );
    }

    /// Greedy and exhaustive optimisers always produce the same relation for
    /// follow-up queries on factorised results.
    #[test]
    fn greedy_and_exhaustive_agree_on_factorised_queries(
        seed in 0u64..10_000,
        tuples in 1usize..40,
        domain in 2u64..10,
        k in 1usize..3,
        l in 1usize..3,
    ) {
        let (db, base_query) = scenario(seed, 3, 6, tuples, domain, k);
        let base = FdbEngine::new().evaluate_flat(&db, &base_query).expect("base evaluates");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let follow = fdb::datagen::random_followup_equalities(&mut rng, db.catalog(), &base_query, l);
        prop_assume!(!follow.is_empty());
        let fq = fdb::engine::FactorisedQuery::equalities(follow);
        let exhaustive = FdbEngine::new().evaluate_factorised(&base.result, &fq).expect("exhaustive");
        let greedy = FdbEngine::greedy().evaluate_factorised(&base.result, &fq).expect("greedy");
        prop_assert_eq!(
            materialize(&exhaustive.result).expect("enumerate").tuple_set(),
            materialize(&greedy.result).expect("enumerate").tuple_set()
        );
        // Greedy never beats the exhaustive optimum.
        prop_assert!(greedy.stats.plan_cost + 1e-6 >= exhaustive.stats.plan_cost);
    }
}

#[test]
fn factorised_size_never_exceeds_flat_size() {
    // Deterministic sweep: the number of singletons of the factorised result
    // is bounded by the number of data elements of the flat result.
    for seed in 0..20u64 {
        let (db, query) = scenario(seed, 3, 7, 40, 8, 2);
        let out = FdbEngine::new()
            .evaluate_flat(&db, &query)
            .expect("FDB evaluates");
        let flat = RdbEngine::new()
            .evaluate(&db, &query)
            .expect("RDB evaluates");
        assert!(
            out.stats.result_size <= flat.data_element_count().max(1),
            "seed {seed}: {} singletons > {} data elements",
            out.stats.result_size,
            flat.data_element_count()
        );
    }
}
