//! Concurrent-serving equivalence: a batch of queries served on a
//! work-stealing pool (2, 4 and 8 workers) must be observationally identical
//! to the same batch evaluated sequentially — store-identical result
//! representations, value-equal aggregates, and identical error outcomes —
//! because execution is a pure function of the `Arc`-shared frozen input and
//! the query.  The second half pins `par_materialize` bit-for-bit against
//! the sequential cursor on randomized representations.

use fdb::common::{AggregateHead, ComparisonOp, ConstSelection, RelId};
use fdb::datagen::{populate, random_query, random_schema, ValueDistribution};
use fdb::engine::{
    FactorisedQuery, FdbEngine, FdbServer, ServeOutcome, ServeRequest, SharedDatabase, ThreadPool,
};
use fdb::frep::{materialize, par_materialize, FRep};
use fdb::{AttrId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random factorised result to serve queries against.
fn random_rep(rng: &mut StdRng, seed: u64) -> FRep {
    let relations = 1 + (seed as usize % 3);
    let attributes = relations + 2 + (seed as usize % 3);
    let catalog = random_schema(rng, relations, attributes);
    let rels: Vec<RelId> = catalog.rels().collect();
    let distribution = if seed.is_multiple_of(2) {
        ValueDistribution::Uniform
    } else {
        ValueDistribution::Zipf(1.0)
    };
    let db = populate(rng, &catalog, 25, 6, distribution);
    let k = (seed as usize) % attributes.min(3);
    let query = random_query(rng, &catalog, &rels, k);
    FdbEngine::new()
        .evaluate_flat(&db, &query)
        .expect("FDB evaluates")
        .result
}

/// A random query over the representation's visible attributes: constant
/// selections (occasionally unsatisfiable, so some requests empty their
/// result mid-plan), sometimes an equality, sometimes a projection or an
/// aggregate head.
fn random_request(rng: &mut StdRng, rep_id: fdb::engine::RepId, rep: &FRep) -> ServeRequest {
    let attrs = rep.visible_attrs();
    let mut query = FactorisedQuery::default();
    let pick = |rng: &mut StdRng, attrs: &[AttrId]| attrs[rng.gen_range(0..attrs.len())];
    if !attrs.is_empty() {
        for _ in 0..rng.gen_range(0..3usize) {
            let op = [
                ComparisonOp::Eq,
                ComparisonOp::Ge,
                ComparisonOp::Le,
                ComparisonOp::Ne,
            ][rng.gen_range(0..4usize)];
            // Domain values live in 1..=6; 99 selects nothing.
            let value = if rng.gen_bool(0.15) {
                99
            } else {
                rng.gen_range(1..=6u64)
            };
            query = query.with_const_selection(ConstSelection {
                attr: pick(rng, &attrs),
                op,
                value: Value::new(value),
            });
        }
        if attrs.len() >= 2 && rng.gen_bool(0.3) {
            let a = pick(rng, &attrs);
            let b = pick(rng, &attrs);
            if a != b {
                query.equalities.push((a, b));
            }
        }
        if rng.gen_bool(0.3) {
            let keep: Vec<AttrId> = attrs
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.7))
                .collect();
            query = query.with_projection(keep);
        }
    }
    let aggregate = if query.projection.is_none() && rng.gen_bool(0.25) {
        Some(AggregateHead::count())
    } else {
        None
    };
    ServeRequest::new(rep_id, query, aggregate)
}

/// Serves the batch at several worker counts and asserts every outcome —
/// including errors for invalid queries — matches the sequential engine.
fn check_served_batch_matches_serial(
    engine: &FdbEngine,
    db: &Arc<SharedDatabase>,
    requests: &[ServeRequest],
    context: &str,
) {
    for workers in [2usize, 4, 8] {
        let server = FdbServer::new(*engine, Arc::clone(db), workers);
        let outcomes = server.serve_batch(requests.to_vec());
        assert_eq!(outcomes.len(), requests.len(), "{context}: batch length");
        for (i, (request, outcome)) in requests.iter().zip(&outcomes).enumerate() {
            let rep = db.get(request.rep).expect("registered representation");
            match &request.aggregate {
                Some(head) => {
                    let serial = engine.evaluate_factorised_aggregate(&rep, &request.query, head);
                    match (outcome, serial) {
                        (Ok(ServeOutcome::Aggregate(got)), Ok(want)) => assert_eq!(
                            got.result, want.result,
                            "{context}: request {i} aggregate at {workers} workers"
                        ),
                        (Err(_), Err(_)) => {}
                        (got, want) => panic!(
                            "{context}: request {i} outcome kind diverged at {workers} \
                             workers ({got:?} vs {want:?})"
                        ),
                    }
                }
                None => {
                    let serial = engine.evaluate_factorised(&rep, &request.query);
                    match (outcome, serial) {
                        (Ok(ServeOutcome::Rep(got)), Ok(want)) => {
                            got.result
                                .validate()
                                .unwrap_or_else(|e| panic!("{context}: request {i}: {e:?}"));
                            assert!(
                                got.result.store_identical(&want.result),
                                "{context}: request {i} store diverged at {workers} workers"
                            );
                        }
                        (Err(_), Err(_)) => {}
                        (got, want) => panic!(
                            "{context}: request {i} outcome kind diverged at {workers} \
                             workers ({got:?} vs {want:?})"
                        ),
                    }
                }
            }
        }
        assert_eq!(
            server.queries_served(),
            requests.len() as u64,
            "{context}: served counter at {workers} workers"
        );
    }
}

#[test]
fn randomized_concurrent_batches_are_store_identical_to_sequential() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0x00A6_6E90 ^ seed);
        let engine = FdbEngine::new();
        let mut shared = SharedDatabase::new();
        let mut reps = Vec::new();
        for r in 0..2u64 {
            let rep = random_rep(&mut rng, seed * 2 + r);
            let id = shared
                .insert(format!("rep{r}"), rep.clone())
                .expect("unique name");
            reps.push((id, rep));
        }
        let db = Arc::new(shared);
        let requests: Vec<ServeRequest> = (0..16)
            .map(|_| {
                let (id, rep) = &reps[rng.gen_range(0..reps.len())];
                random_request(&mut rng, *id, rep)
            })
            .collect();
        check_served_batch_matches_serial(&engine, &db, &requests, &format!("seed {seed}"));
    }
}

#[test]
fn unsatisfiable_selections_empty_identically_under_concurrency() {
    // Every request empties its representation mid-plan; the emptied arenas
    // must still be store-identical to the sequential path.
    let mut rng = StdRng::seed_from_u64(0x00A6_6E91);
    let engine = FdbEngine::new();
    let rep = random_rep(&mut rng, 1);
    let attrs = rep.visible_attrs();
    let mut shared = SharedDatabase::new();
    let id = shared.insert("base", rep).expect("unique name");
    let db = Arc::new(shared);
    let requests: Vec<ServeRequest> = attrs
        .iter()
        .map(|&attr| {
            ServeRequest::new(
                id,
                FactorisedQuery::default().with_const_selection(ConstSelection {
                    attr,
                    op: ComparisonOp::Gt,
                    value: Value::new(1_000_000),
                }),
                None,
            )
        })
        .chain(attrs.iter().map(|&attr| {
            ServeRequest::new(
                id,
                FactorisedQuery::default().with_const_selection(ConstSelection {
                    attr,
                    op: ComparisonOp::Gt,
                    value: Value::new(1_000_000),
                }),
                Some(AggregateHead::count()),
            )
        }))
        .collect();
    check_served_batch_matches_serial(&engine, &db, &requests, "unsatisfiable");
    let server = FdbServer::new(engine, Arc::clone(&db), 4);
    for outcome in server.serve_batch(requests) {
        match outcome.expect("unsatisfiable selections still evaluate") {
            ServeOutcome::Rep(out) => assert!(out.result.represents_empty()),
            ServeOutcome::Aggregate(_) | ServeOutcome::Ordered(_) => {}
        }
    }
}

#[test]
fn fdb_threads_environment_variable_sizes_the_default_pool() {
    // `default_threads` honours FDB_THREADS; the serving layer re-exports it
    // so operators can pin the pool without code changes.
    std::env::set_var("FDB_THREADS", "3");
    assert_eq!(fdb::engine::default_threads(), 3);
    let engine = FdbEngine::new();
    let mut shared = SharedDatabase::new();
    let mut rng = StdRng::seed_from_u64(0x00A6_6E92);
    shared
        .insert("base", random_rep(&mut rng, 2))
        .expect("unique name");
    let server = FdbServer::with_default_threads(engine, Arc::new(shared));
    assert_eq!(server.threads(), 3);
    std::env::remove_var("FDB_THREADS");
    assert!(fdb::engine::default_threads() >= 1);
}

#[test]
fn randomized_parallel_enumeration_is_bit_for_bit_sequential() {
    // `par_materialize` concatenates root-range partitions in order, so the
    // resulting relation must equal the sequential cursor's exactly — same
    // rows in the same order — at every worker count.
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x00A6_6E93 ^ seed);
        let rep = Arc::new(random_rep(&mut rng, seed));
        let sequential = materialize(&rep).expect("sequential materialize");
        for workers in [2usize, 4, 8] {
            let pool = ThreadPool::new(workers);
            let parallel = par_materialize(&rep, &pool).expect("parallel materialize");
            assert!(
                parallel == sequential,
                "seed {seed}: parallel enumeration diverged at {workers} workers"
            );
        }
    }
}
