//! The paper's observation about one-to-many (key–foreign-key) joins: when
//! joins are on keys, result sizes grow only linearly in the input, so the
//! advantage of factorisation shrinks to roughly the number of relations in
//! the query — unlike the many-to-many case where it is orders of magnitude.

use fdb::common::{Catalog, Query};
use fdb::engine::FdbEngine;
use fdb::frep::materialize;
use fdb::relation::{Database, RdbEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a star-schema-like database: a fact table referencing two
/// dimension tables by key (every foreign key matches exactly one dimension
/// row — a pure one-to-many setting).
fn key_foreign_key_db(facts: usize, dims: usize) -> (Database, Query) {
    let mut catalog = Catalog::new();
    let (fact, _) = catalog.add_relation("Fact", &["fid", "d1_fk", "d2_fk"]);
    let (dim1, _) = catalog.add_relation("Dim1", &["d1_id", "d1_payload"]);
    let (dim2, _) = catalog.add_relation("Dim2", &["d2_id", "d2_payload"]);
    let mut db = Database::new(catalog.clone());

    let mut rng = StdRng::seed_from_u64(2024);
    let fact_rows: Vec<Vec<u64>> = (0..facts)
        .map(|i| {
            vec![
                i as u64 + 1,
                rng.gen_range(1..=dims as u64),
                rng.gen_range(1..=dims as u64),
            ]
        })
        .collect();
    db.insert_raw_rows(fact, &fact_rows).unwrap();
    let dim_rows: Vec<Vec<u64>> = (1..=dims as u64).map(|i| vec![i, 1000 + i]).collect();
    db.insert_raw_rows(dim1, &dim_rows).unwrap();
    db.insert_raw_rows(dim2, &dim_rows).unwrap();

    let query = Query::product(vec![fact, dim1, dim2])
        .with_equality(
            catalog.find_attr("Fact.d1_fk").unwrap(),
            catalog.find_attr("Dim1.d1_id").unwrap(),
        )
        .with_equality(
            catalog.find_attr("Fact.d2_fk").unwrap(),
            catalog.find_attr("Dim2.d2_id").unwrap(),
        );
    (db, query)
}

#[test]
fn key_foreign_key_joins_grow_linearly_and_engines_agree() {
    let (db, query) = key_foreign_key_db(400, 25);
    let fdb = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
    let rdb = RdbEngine::new().evaluate(&db, &query).unwrap();

    // One result tuple per fact row: the join result does not exceed the
    // relation with the foreign keys, exactly as the paper notes for TPC-H.
    assert_eq!(rdb.len(), 400);
    assert_eq!(fdb.stats.result_tuples, 400);
    let mut attrs = rdb.attrs().to_vec();
    attrs.sort_unstable();
    assert_eq!(
        materialize(&fdb.result).unwrap().tuple_set(),
        rdb.reorder_columns(&attrs).unwrap().tuple_set()
    );
}

#[test]
fn key_foreign_key_gap_is_a_small_constant_factor() {
    let (db, query) = key_foreign_key_db(600, 30);
    let fdb = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
    let rdb = RdbEngine::new().evaluate(&db, &query).unwrap();

    let flat_elements = rdb.data_element_count() as f64;
    let singletons = fdb.stats.result_size as f64;
    let ratio = flat_elements / singletons;
    // Factorised is still smaller, but only by a factor around the number of
    // relations in the query (the paper: "only by a factor that is
    // approximately the number of relations"), not by orders of magnitude.
    assert!(ratio >= 1.0, "factorisation never loses");
    assert!(
        ratio <= 10.0,
        "one-to-many joins must not show the many-to-many blow-up (ratio {ratio})"
    );
    // The size-bound parameter s(T) is oblivious to key constraints (it is a
    // worst-case bound over all databases), so it may still be 2 here; the
    // *actual* sizes above are what stay linear.
    assert!(fdb.stats.plan_cost <= 2.0 + 1e-6);
}

#[test]
fn many_to_many_control_shows_the_contrast() {
    // Same shape of query but with heavily repeated join values: the gap now
    // widens far beyond the relation count, the behaviour Experiment 3 is
    // built around.  This is the control case for the two tests above.
    let mut catalog = Catalog::new();
    let (r, _) = catalog.add_relation("R", &["a", "j1"]);
    let (s, _) = catalog.add_relation("S", &["j1b", "j2"]);
    let (t, _) = catalog.add_relation("T", &["j2b", "b"]);
    let mut db = Database::new(catalog.clone());
    let mut rng = StdRng::seed_from_u64(7);
    for rel in [r, s, t] {
        let rows: Vec<Vec<u64>> = (0..500)
            .map(|_| vec![rng.gen_range(1..=5u64), rng.gen_range(1..=5u64)])
            .collect();
        let mut dedup = rows;
        dedup.sort();
        dedup.dedup();
        db.insert_raw_rows(rel, &dedup).unwrap();
    }
    let query = Query::product(vec![r, s, t])
        .with_equality(
            catalog.find_attr("R.j1").unwrap(),
            catalog.find_attr("S.j1b").unwrap(),
        )
        .with_equality(
            catalog.find_attr("S.j2").unwrap(),
            catalog.find_attr("T.j2b").unwrap(),
        );
    let fdb = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
    let rdb = RdbEngine::new().evaluate(&db, &query).unwrap();
    let ratio = rdb.data_element_count() as f64 / fdb.stats.result_size as f64;
    assert!(
        ratio > 10.0,
        "many-to-many joins must show a much larger factorisation gap (ratio {ratio})"
    );
}
