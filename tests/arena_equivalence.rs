//! Arena-migration equivalence: the arena-backed representation and its
//! iterative cursor must be observationally identical to the flat relational
//! path — same tuple multiset, same ascending-attribute column order — and
//! the representation statistics must be invariant under the builder-form
//! round trip (`to_forest` / `from_parts`).

use fdb::common::{Query, RelId, Value};
use fdb::datagen::{grocery_database, populate, random_query, random_schema, ValueDistribution};
use fdb::engine::FdbEngine;
use fdb::frep::{for_each_tuple, materialize, FRep, Union};
use fdb::relation::{Database, RdbEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Canonical (attribute-sorted) tuple multiset of the flat RDB result.  Flat
/// join results are sets, so a `BTreeMap` to counts doubles as a multiset
/// check against the enumeration (which must not produce duplicates).
fn rdb_tuple_counts(db: &Database, query: &Query) -> BTreeMap<Vec<Value>, usize> {
    let result = RdbEngine::new().evaluate(db, query).expect("RDB evaluates");
    let mut attrs = result.attrs().to_vec();
    attrs.sort_unstable();
    let reordered = result.reorder_columns(&attrs).expect("same attributes");
    let mut counts = BTreeMap::new();
    for row in reordered.rows() {
        *counts.entry(row.to_vec()).or_insert(0usize) += 1;
    }
    counts
}

/// The tuple multiset the cursor enumerates.
fn enumerated_tuple_counts(rep: &FRep) -> BTreeMap<Vec<Value>, usize> {
    let mut counts = BTreeMap::new();
    for_each_tuple(rep, |t| {
        *counts.entry(t.to_vec()).or_insert(0usize) += 1;
    });
    counts
}

/// Reference singleton count computed on the thawed builder forest — an
/// implementation of `FRep::size` that never touches the arena.
fn reference_size(rep: &FRep) -> usize {
    fn count(rep: &FRep, union: &Union) -> usize {
        let own = rep.tree().visible_attrs(union.node).len() * union.entries.len();
        own + union
            .entries
            .iter()
            .flat_map(|e| e.children.iter())
            .map(|child| count(rep, child))
            .sum::<usize>()
    }
    rep.to_forest().iter().map(|u| count(rep, u)).sum()
}

/// Every check bundled: multiset equality against RDB, ascending-attribute
/// buffer order, tuple-count consistency, and size invariance under the
/// builder round trip.
fn check_rep(db: &Database, query: &Query, rep: &FRep, context: &str) {
    rep.validate()
        .unwrap_or_else(|e| panic!("{context}: invalid representation: {e:?}"));

    // Ascending-attribute order: the buffer columns are the visible
    // attributes sorted by id.
    let attrs = rep.visible_attrs();
    let mut sorted = attrs.clone();
    sorted.sort_unstable();
    assert_eq!(
        attrs, sorted,
        "{context}: visible attributes must come out ascending"
    );

    // Same tuple multiset as the flat relational path.
    let expected = rdb_tuple_counts(db, query);
    let actual = enumerated_tuple_counts(rep);
    assert_eq!(
        actual, expected,
        "{context}: enumeration disagrees with the RDB result"
    );

    // materialize is for_each_tuple collected: same cardinality, same set.
    let flat = materialize(rep).expect("materialisation succeeds");
    assert_eq!(
        flat.len() as u128,
        rep.tuple_count(),
        "{context}: tuple_count"
    );
    assert_eq!(
        flat.attrs(),
        &attrs[..],
        "{context}: materialised column order"
    );

    // Size invariance: the arena's flat-loop size equals the builder-form
    // reference count, and survives a thaw/freeze round trip.
    let size = rep.size();
    assert_eq!(
        size,
        reference_size(rep),
        "{context}: arena size vs builder reference"
    );
    let round_tripped = FRep::from_parts(rep.tree().clone(), rep.to_forest())
        .unwrap_or_else(|e| panic!("{context}: round trip rejected: {e:?}"));
    assert_eq!(
        round_tripped.size(),
        size,
        "{context}: size after round trip"
    );
    assert_eq!(
        round_tripped.tuple_count(),
        rep.tuple_count(),
        "{context}: count after round trip"
    );
}

#[test]
fn grocery_queries_agree_with_the_flat_path() {
    let g = grocery_database();
    for (name, query) in [("q1", g.q1()), ("q2", g.q2())] {
        let out = FdbEngine::new()
            .evaluate_flat(&g.db, &query)
            .expect("FDB evaluates");
        check_rep(&g.db, &query, &out.result, name);
        assert!(
            out.result.size() > 0,
            "{name}: grocery results are non-empty"
        );
    }
}

#[test]
fn randomized_grocery_scale_workloads_agree_with_the_flat_path() {
    // Grocery-scale sweeps: a handful of small relations, value domains
    // narrow enough that joins actually match, both value distributions.
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x00A1_1E90 ^ seed);
        let relations = 1 + (seed as usize % 3);
        let attributes = relations + 1 + (seed as usize % 4);
        let catalog = random_schema(&mut rng, relations, attributes);
        let rels: Vec<RelId> = catalog.rels().collect();
        let distribution = if seed % 2 == 0 {
            ValueDistribution::Uniform
        } else {
            ValueDistribution::Zipf(1.0)
        };
        let db = populate(&mut rng, &catalog, 30, 8, distribution);
        let k = (seed as usize) % attributes.min(3);
        let query = random_query(&mut rng, &catalog, &rels, k);

        let out = FdbEngine::new()
            .evaluate_flat(&db, &query)
            .expect("FDB evaluates");
        check_rep(&db, &query, &out.result, &format!("seed {seed}"));
    }
}

#[test]
fn selections_preserve_the_equivalence() {
    // Constant selections exercise the arena-native filtered rebuild.
    let g = grocery_database();
    let item = g.attr("Orders.item");
    for (op, value) in [
        (fdb::ComparisonOp::Eq, 2),
        (fdb::ComparisonOp::Ge, 2),
        (fdb::ComparisonOp::Ne, 1),
        (fdb::ComparisonOp::Eq, 99), // selects nothing
    ] {
        let query = g.q1().with_const_selection(item, op, Value::new(value));
        let out = FdbEngine::new()
            .evaluate_flat(&g.db, &query)
            .expect("FDB evaluates");
        check_rep(
            &g.db,
            &query,
            &out.result,
            &format!("σ(item {op:?} {value})"),
        );
    }
}
