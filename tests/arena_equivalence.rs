//! Arena-migration equivalence: the arena-backed representation and its
//! iterative cursor must be observationally identical to the flat relational
//! path — same tuple multiset, same ascending-attribute column order — and
//! the representation statistics must be invariant under the builder-form
//! round trip (`to_forest` / `from_parts`).
//!
//! Since PR 2 the structural operators rewrite arena-to-arena; the
//! randomized property tests in the second half of this file assert that on
//! generated f-representations every arena-native operator produces a store
//! **bit-for-bit identical** (`FRep::store_identical`, checked after
//! `validate()`) to the thaw-path oracle in `fdb::frep::ops::oracle`,
//! including empty-union and single-entry edge cases.

use fdb::common::{AttrId, ComparisonOp, Query, RelId, Value};
use fdb::datagen::{grocery_database, populate, random_query, random_schema, ValueDistribution};
use fdb::engine::FdbEngine;
use fdb::frep::ops::{self, oracle};
use fdb::frep::{for_each_tuple, materialize, Entry, FRep, Union};
use fdb::ftree::{DepEdge, FTree, NodeId};
use fdb::relation::{Database, RdbEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Canonical (attribute-sorted) tuple multiset of the flat RDB result.  Flat
/// join results are sets, so a `BTreeMap` to counts doubles as a multiset
/// check against the enumeration (which must not produce duplicates).
fn rdb_tuple_counts(db: &Database, query: &Query) -> BTreeMap<Vec<Value>, usize> {
    let result = RdbEngine::new().evaluate(db, query).expect("RDB evaluates");
    let mut attrs = result.attrs().to_vec();
    attrs.sort_unstable();
    let reordered = result.reorder_columns(&attrs).expect("same attributes");
    let mut counts = BTreeMap::new();
    for row in reordered.rows() {
        *counts.entry(row.to_vec()).or_insert(0usize) += 1;
    }
    counts
}

/// The tuple multiset the cursor enumerates.
fn enumerated_tuple_counts(rep: &FRep) -> BTreeMap<Vec<Value>, usize> {
    let mut counts = BTreeMap::new();
    for_each_tuple(rep, |t| {
        *counts.entry(t.to_vec()).or_insert(0usize) += 1;
    });
    counts
}

/// Reference singleton count computed on the thawed builder forest — an
/// implementation of `FRep::size` that never touches the arena.
fn reference_size(rep: &FRep) -> usize {
    fn count(rep: &FRep, union: &Union) -> usize {
        let own = rep.tree().visible_attrs(union.node).len() * union.entries.len();
        own + union
            .entries
            .iter()
            .flat_map(|e| e.children.iter())
            .map(|child| count(rep, child))
            .sum::<usize>()
    }
    rep.to_forest().iter().map(|u| count(rep, u)).sum()
}

/// Every check bundled: multiset equality against RDB, ascending-attribute
/// buffer order, tuple-count consistency, and size invariance under the
/// builder round trip.
fn check_rep(db: &Database, query: &Query, rep: &FRep, context: &str) {
    rep.validate()
        .unwrap_or_else(|e| panic!("{context}: invalid representation: {e:?}"));

    // Ascending-attribute order: the buffer columns are the visible
    // attributes sorted by id.
    let attrs = rep.visible_attrs();
    let mut sorted = attrs.clone();
    sorted.sort_unstable();
    assert_eq!(
        attrs, sorted,
        "{context}: visible attributes must come out ascending"
    );

    // Same tuple multiset as the flat relational path.
    let expected = rdb_tuple_counts(db, query);
    let actual = enumerated_tuple_counts(rep);
    assert_eq!(
        actual, expected,
        "{context}: enumeration disagrees with the RDB result"
    );

    // materialize is for_each_tuple collected: same cardinality, same set.
    let flat = materialize(rep).expect("materialisation succeeds");
    assert_eq!(
        flat.len() as u128,
        rep.tuple_count(),
        "{context}: tuple_count"
    );
    assert_eq!(
        flat.attrs(),
        &attrs[..],
        "{context}: materialised column order"
    );

    // Size invariance: the arena's flat-loop size equals the builder-form
    // reference count, and survives a thaw/freeze round trip.
    let size = rep.size();
    assert_eq!(
        size,
        reference_size(rep),
        "{context}: arena size vs builder reference"
    );
    let round_tripped = FRep::from_parts(rep.tree().clone(), rep.to_forest())
        .unwrap_or_else(|e| panic!("{context}: round trip rejected: {e:?}"));
    assert_eq!(
        round_tripped.size(),
        size,
        "{context}: size after round trip"
    );
    assert_eq!(
        round_tripped.tuple_count(),
        rep.tuple_count(),
        "{context}: count after round trip"
    );
}

#[test]
fn grocery_queries_agree_with_the_flat_path() {
    let g = grocery_database();
    for (name, query) in [("q1", g.q1()), ("q2", g.q2())] {
        let out = FdbEngine::new()
            .evaluate_flat(&g.db, &query)
            .expect("FDB evaluates");
        check_rep(&g.db, &query, &out.result, name);
        assert!(
            out.result.size() > 0,
            "{name}: grocery results are non-empty"
        );
    }
}

#[test]
fn randomized_grocery_scale_workloads_agree_with_the_flat_path() {
    // Grocery-scale sweeps: a handful of small relations, value domains
    // narrow enough that joins actually match, both value distributions.
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x00A1_1E90 ^ seed);
        let relations = 1 + (seed as usize % 3);
        let attributes = relations + 1 + (seed as usize % 4);
        let catalog = random_schema(&mut rng, relations, attributes);
        let rels: Vec<RelId> = catalog.rels().collect();
        let distribution = if seed % 2 == 0 {
            ValueDistribution::Uniform
        } else {
            ValueDistribution::Zipf(1.0)
        };
        let db = populate(&mut rng, &catalog, 30, 8, distribution);
        let k = (seed as usize) % attributes.min(3);
        let query = random_query(&mut rng, &catalog, &rels, k);

        let out = FdbEngine::new()
            .evaluate_flat(&db, &query)
            .expect("FDB evaluates");
        check_rep(&db, &query, &out.result, &format!("seed {seed}"));
    }
}

// ---------------------------------------------------------------------
// PR 2: arena-native structural operators vs the thaw-path oracle
// ---------------------------------------------------------------------

fn assert_identical(arena: &FRep, reference: &FRep, context: &str) {
    arena
        .validate()
        .unwrap_or_else(|e| panic!("{context}: arena-native result invalid: {e:?}"));
    reference
        .validate()
        .unwrap_or_else(|e| panic!("{context}: oracle result invalid: {e:?}"));
    assert!(
        arena.store_identical(reference),
        "{context}: stores diverge\narena:\n{}\noracle:\n{}",
        arena.dump_store(),
        reference.dump_store()
    );
}

/// Applies every applicable structural operator to clones of `rep`, both
/// arena-native and through the thaw-path oracle, and asserts the stores
/// come out bit-for-bit identical.
fn check_structural_ops_against_oracle(rep: &FRep, rng: &mut StdRng, context: &str) {
    // Canonicalise the input to the freeze layout first: an operator that
    // turns out to be a no-op (e.g. normalise on an already-normalised tree)
    // leaves the arena untouched, while the oracle always re-freezes — the
    // two can only be bit-identical if the input already is.
    let rep = &FRep::from_parts(rep.tree().clone(), rep.to_forest())
        .unwrap_or_else(|e| panic!("{context}: canonicalisation rejected: {e:?}"));
    let tree = rep.tree();
    let nodes: Vec<NodeId> = tree.node_ids();

    // Swap χ: every non-root node.
    for &node in &nodes {
        if tree.parent(node).is_none() {
            continue;
        }
        let mut arena = rep.clone();
        let mut reference = rep.clone();
        let got = ops::swap(&mut arena, node).expect("arena swap applies");
        let want = oracle::swap(&mut reference, node).expect("oracle swap applies");
        assert_eq!(got, want, "{context}: swap({node}) outcome");
        assert_identical(&arena, &reference, &format!("{context}: swap({node})"));
    }

    // Push-up ψ / normalisation η wherever the tree allows it.
    for &node in &nodes {
        if !tree.can_push_up(node) {
            continue;
        }
        let mut arena = rep.clone();
        let mut reference = rep.clone();
        ops::push_up(&mut arena, node).expect("arena push-up applies");
        oracle::push_up(&mut reference, node).expect("oracle push-up applies");
        assert_identical(&arena, &reference, &format!("{context}: push_up({node})"));
    }
    {
        let mut arena = rep.clone();
        let mut reference = rep.clone();
        let got = ops::normalise(&mut arena).expect("arena normalise applies");
        let want = oracle::normalise(&mut reference).expect("oracle normalise applies");
        assert_eq!(got, want, "{context}: normalise sequence");
        assert_identical(&arena, &reference, &format!("{context}: normalise"));
    }

    // Merge µ: every ordered sibling pair.
    for &a in &nodes {
        for &b in &nodes {
            if a == b || !tree.are_siblings(a, b) {
                continue;
            }
            let mut arena = rep.clone();
            let mut reference = rep.clone();
            ops::merge(&mut arena, a, b).expect("arena merge applies");
            oracle::merge(&mut reference, a, b).expect("oracle merge applies");
            assert_identical(&arena, &reference, &format!("{context}: merge({a},{b})"));
        }
    }

    // Absorb α: every ancestor/descendant pair.
    for &a in &nodes {
        for &b in &nodes {
            if !tree.is_ancestor(a, b) {
                continue;
            }
            let mut arena = rep.clone();
            let mut reference = rep.clone();
            let got = ops::absorb(&mut arena, a, b).expect("arena absorb applies");
            let want = oracle::absorb(&mut reference, a, b).expect("oracle absorb applies");
            assert_eq!(got, want, "{context}: absorb({a},{b}) push-ups");
            assert_identical(&arena, &reference, &format!("{context}: absorb({a},{b})"));
        }
    }

    // Projection π onto a random attribute subset (and the empty one).
    let all: Vec<AttrId> = rep.visible_attrs();
    let mut keeps: Vec<BTreeSet<AttrId>> = vec![BTreeSet::new()];
    let random_keep: BTreeSet<AttrId> = all.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
    keeps.push(random_keep);
    for keep in keeps {
        let mut arena = rep.clone();
        let mut reference = rep.clone();
        ops::project(&mut arena, &keep).expect("arena projection applies");
        oracle::project(&mut reference, &keep).expect("oracle projection applies");
        assert_identical(&arena, &reference, &format!("{context}: project({keep:?})"));
    }
}

#[test]
fn randomized_structural_ops_match_the_thaw_path_oracle() {
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x00A2_2E90 ^ seed);
        let relations = 1 + (seed as usize % 3);
        let attributes = relations + 2 + (seed as usize % 3);
        let catalog = random_schema(&mut rng, relations, attributes);
        let rels: Vec<RelId> = catalog.rels().collect();
        let distribution = if seed % 2 == 0 {
            ValueDistribution::Uniform
        } else {
            ValueDistribution::Zipf(1.0)
        };
        let db = populate(&mut rng, &catalog, 25, 6, distribution);
        let k = (seed as usize) % attributes.min(3);
        let query = random_query(&mut rng, &catalog, &rels, k);
        let rep = FdbEngine::new()
            .evaluate_flat(&db, &query)
            .expect("FDB evaluates")
            .result;
        check_structural_ops_against_oracle(&rep, &mut rng, &format!("seed {seed}"));
    }
}

#[test]
fn structural_ops_match_the_oracle_on_empty_and_singleton_representations() {
    // A{0} → B{1} → C{2} chain with exactly one entry per union: the
    // single-entry edge case for every operator.
    let attrs = |ids: &[u32]| -> BTreeSet<AttrId> { ids.iter().map(|&i| AttrId(i)).collect() };
    let edges = vec![
        DepEdge::new("RAB", attrs(&[0, 1]), 1),
        DepEdge::new("RBC", attrs(&[1, 2]), 1),
    ];
    let mut tree = FTree::new(edges);
    let a = tree.add_node(attrs(&[0]), None).unwrap();
    let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
    let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
    let singleton = FRep::from_parts(
        tree.clone(),
        vec![Union::new(
            a,
            vec![Entry {
                value: Value::new(7),
                children: vec![Union::new(
                    b,
                    vec![Entry {
                        value: Value::new(7),
                        children: vec![Union::new(c, vec![Entry::leaf(Value::new(7))])],
                    }],
                )],
            }],
        )],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(0x00A2_2E91);
    check_structural_ops_against_oracle(&singleton, &mut rng, "singleton chain");

    // The same tree with empty root unions: the empty-union edge case.  An
    // unsatisfiable selection produces the canonical empty representation.
    let mut empty = singleton.clone();
    fdb::frep::ops::select_const(&mut empty, AttrId(0), ComparisonOp::Eq, Value::new(99)).unwrap();
    assert!(empty.represents_empty());
    check_structural_ops_against_oracle(&empty, &mut rng, "empty representation");

    // A forest with two roots (one empty), exercising the root-context
    // branches of merge, push-up and projection.
    let edges = vec![
        DepEdge::new("R", attrs(&[0]), 1),
        DepEdge::new("S", attrs(&[1]), 0),
    ];
    let mut forest_tree = FTree::new(edges);
    let r = forest_tree.add_node(attrs(&[0]), None).unwrap();
    let s = forest_tree.add_node(attrs(&[1]), None).unwrap();
    let forest = FRep::from_parts(
        forest_tree,
        vec![
            Union::new(r, vec![Entry::leaf(Value::new(1))]),
            Union::new(s, vec![]),
        ],
    )
    .unwrap();
    check_structural_ops_against_oracle(&forest, &mut rng, "forest with an empty root");
}

#[test]
fn direct_arena_construction_agrees_with_the_forest_oracle() {
    // The arena path (watermark rollback) and the forest path must build the
    // same logical representation on randomized workloads.  The layouts
    // differ (direct emission places entry blocks post-order), so the
    // comparison is on the thawed forests, sizes and counts.
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0x00A2_2E92 ^ seed);
        let relations = 1 + (seed as usize % 3);
        let attributes = relations + 1 + (seed as usize % 4);
        let catalog = random_schema(&mut rng, relations, attributes);
        let rels: Vec<RelId> = catalog.rels().collect();
        let db = populate(&mut rng, &catalog, 30, 8, ValueDistribution::Uniform);
        let k = (seed as usize) % attributes.min(3);
        let query = random_query(&mut rng, &catalog, &rels, k);
        let search = fdb::plan::optimal_ftree(db.catalog(), &query, |r| db.rel_len(r) as u64)
            .expect("an f-tree exists");
        let direct = fdb::frep::build_frep(&db, &query, &search.tree).expect("direct build");
        let forest =
            fdb::frep::build::build_frep_via_forest(&db, &query, &search.tree).expect("oracle");
        direct.validate().expect("direct build valid");
        assert_eq!(
            direct.to_forest(),
            forest.to_forest(),
            "seed {seed}: construction paths diverge"
        );
        assert_eq!(direct.size(), forest.size(), "seed {seed}: size");
        assert_eq!(
            direct.tuple_count(),
            forest.tuple_count(),
            "seed {seed}: tuple count"
        );
    }
}

#[test]
fn selections_preserve_the_equivalence() {
    // Constant selections exercise the arena-native filtered rebuild.
    let g = grocery_database();
    let item = g.attr("Orders.item");
    for (op, value) in [
        (fdb::ComparisonOp::Eq, 2),
        (fdb::ComparisonOp::Ge, 2),
        (fdb::ComparisonOp::Ne, 1),
        (fdb::ComparisonOp::Eq, 99), // selects nothing
    ] {
        let query = g.q1().with_const_selection(item, op, Value::new(value));
        let out = FdbEngine::new()
            .evaluate_flat(&g.db, &query)
            .expect("FDB evaluates");
        check_rep(
            &g.db,
            &query,
            &out.result,
            &format!("σ(item {op:?} {value})"),
        );
    }
}

// ---------------------------------------------------------------------
// PR 3/PR 5: fused plan execution vs the step-wise path — since PR 5 the
// whole plan (selections and projections included) compiles into one
// overlay program, so every randomized plan below exercises whole-plan
// fusion, the PR 3 segmented baseline and the PR 2 step-wise oracle.
// ---------------------------------------------------------------------

use fdb::plan::{FPlan, FPlanOp};

/// Generates a random valid multi-op plan by simulating candidate operators
/// on the f-tree: structural steps (swap, push-up, merge, absorb, normalise)
/// plus occasional barriers (selections with constants, projections), so the
/// plan exercises both fused segments and segment boundaries.
fn random_plan(rng: &mut StdRng, tree: &fdb::ftree::FTree, steps: usize, barriers: bool) -> FPlan {
    let mut cur = tree.clone();
    let mut ops: Vec<FPlanOp> = Vec::new();
    for _ in 0..steps {
        let nodes: Vec<NodeId> = cur.node_ids();
        let mut candidates: Vec<FPlanOp> = Vec::new();
        for &n in &nodes {
            if cur.parent(n).is_some() {
                candidates.push(FPlanOp::Swap(n));
            }
            if cur.can_push_up(n) {
                candidates.push(FPlanOp::PushUp(n));
            }
        }
        for &x in &nodes {
            for &y in &nodes {
                if x != y && cur.are_siblings(x, y) {
                    candidates.push(FPlanOp::Merge(x, y));
                }
                if cur.is_ancestor(x, y) {
                    candidates.push(FPlanOp::Absorb(x, y));
                }
            }
        }
        candidates.push(FPlanOp::Normalise);
        if barriers {
            let attrs: Vec<AttrId> = cur.all_attrs().into_iter().collect();
            if !attrs.is_empty() {
                let attr = attrs[rng.gen_range(0..attrs.len())];
                let op = [ComparisonOp::Ge, ComparisonOp::Ne, ComparisonOp::Le]
                    [rng.gen_range(0..3usize)];
                candidates.push(FPlanOp::SelectConst {
                    attr,
                    op,
                    value: Value::new(rng.gen_range(0..8u64)),
                });
            }
            let keep: BTreeSet<AttrId> = cur
                .all_attrs()
                .into_iter()
                .filter(|_| rng.gen_bool(0.8))
                .collect();
            candidates.push(FPlanOp::Project(keep));
        }
        if candidates.is_empty() {
            break;
        }
        let op = candidates[rng.gen_range(0..candidates.len())].clone();
        if op.apply_to_tree(&mut cur).is_err() {
            continue;
        }
        ops.push(op);
    }
    FPlan::new(ops)
}

/// Executes the plan all three ways — whole-plan fused, PR 3 segmented, and
/// PR 2 step-wise — and asserts the arenas are bit-for-bit identical (store
/// identity), the fused result validates, and the represented relations
/// agree.
fn check_fused_against_stepwise(rep: &FRep, plan: &FPlan, context: &str) {
    let mut fused = rep.clone();
    let mut segmented = rep.clone();
    let mut stepwise = rep.clone();
    let fused_result = plan.execute(&mut fused);
    let segmented_result = plan.execute_segmented(&mut segmented);
    let stepwise_result = plan.execute_stepwise(&mut stepwise);
    assert_eq!(
        fused_result.is_ok(),
        stepwise_result.is_ok(),
        "{context}: paths disagree on plan validity ({fused_result:?} vs {stepwise_result:?})"
    );
    assert_eq!(
        segmented_result.is_ok(),
        stepwise_result.is_ok(),
        "{context}: segmented baseline disagrees on plan validity"
    );
    if fused_result.is_err() {
        return;
    }
    fused
        .validate()
        .unwrap_or_else(|e| panic!("{context}: fused result invalid: {e:?}"));
    assert!(
        fused.store_identical(&stepwise),
        "{context}: plan {plan} — fused and step-wise stores diverge\nfused:\n{}\nstep-wise:\n{}",
        fused.dump_store(),
        stepwise.dump_store()
    );
    assert!(
        segmented.store_identical(&stepwise),
        "{context}: plan {plan} — segmented baseline diverges from step-wise"
    );
    assert_eq!(
        fused.tree().canonical_key(),
        stepwise.tree().canonical_key(),
        "{context}: trees diverge"
    );
    assert_eq!(
        enumerated_tuple_counts(&fused),
        enumerated_tuple_counts(&stepwise),
        "{context}: represented relations diverge"
    );
}

#[test]
fn randomized_fused_plans_match_the_stepwise_path() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x00A3_3E90 ^ seed);
        let relations = 1 + (seed as usize % 3);
        let attributes = relations + 2 + (seed as usize % 3);
        let catalog = random_schema(&mut rng, relations, attributes);
        let rels: Vec<RelId> = catalog.rels().collect();
        let distribution = if seed % 2 == 0 {
            ValueDistribution::Uniform
        } else {
            ValueDistribution::Zipf(1.0)
        };
        let db = populate(&mut rng, &catalog, 25, 6, distribution);
        let k = (seed as usize) % attributes.min(3);
        let query = random_query(&mut rng, &catalog, &rels, k);
        let rep = FdbEngine::new()
            .evaluate_flat(&db, &query)
            .expect("FDB evaluates")
            .result;

        // Pure structural plans (one fused segment) of increasing length.
        for steps in [3usize, 5] {
            let plan = random_plan(&mut rng, rep.tree(), steps, false);
            check_fused_against_stepwise(&rep, &plan, &format!("seed {seed}, k={steps}"));
        }
        // Mixed plans with barriers (multiple segments).
        let plan = random_plan(&mut rng, rep.tree(), 6, true);
        check_fused_against_stepwise(&rep, &plan, &format!("seed {seed}, mixed"));
    }
}

#[test]
fn fused_plans_match_the_stepwise_path_on_edge_case_representations() {
    let mut rng = StdRng::seed_from_u64(0x00A3_3E91);
    let attrs = |ids: &[u32]| -> BTreeSet<AttrId> { ids.iter().map(|&i| AttrId(i)).collect() };

    // Single-entry chain: every operator's single-entry edge case.
    let edges = vec![
        DepEdge::new("RAB", attrs(&[0, 1]), 1),
        DepEdge::new("RBC", attrs(&[1, 2]), 1),
    ];
    let mut tree = FTree::new(edges);
    let a = tree.add_node(attrs(&[0]), None).unwrap();
    let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
    let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
    let singleton = FRep::from_parts(
        tree.clone(),
        vec![Union::new(
            a,
            vec![Entry {
                value: Value::new(7),
                children: vec![Union::new(
                    b,
                    vec![Entry {
                        value: Value::new(7),
                        children: vec![Union::new(c, vec![Entry::leaf(Value::new(7))])],
                    }],
                )],
            }],
        )],
    )
    .unwrap();
    for trial in 0..8 {
        let plan = random_plan(&mut rng, singleton.tree(), 4, trial % 2 == 1);
        check_fused_against_stepwise(&singleton, &plan, &format!("singleton trial {trial}"));
    }
    // Explicit single-segment plans on the chain.
    check_fused_against_stepwise(
        &singleton,
        &FPlan::new(vec![FPlanOp::Swap(b), FPlanOp::Swap(c)]),
        "singleton single segment",
    );
    check_fused_against_stepwise(
        &singleton,
        &FPlan::new(vec![FPlanOp::Absorb(a, c), FPlanOp::Normalise]),
        "singleton absorb segment",
    );

    // Empty-result representation: an unsatisfiable selection first, then
    // structural plans over the empty arena.
    let mut empty = singleton.clone();
    fdb::frep::ops::select_const(&mut empty, AttrId(0), ComparisonOp::Eq, Value::new(99)).unwrap();
    assert!(empty.represents_empty());
    for trial in 0..8 {
        let plan = random_plan(&mut rng, empty.tree(), 4, trial % 2 == 1);
        check_fused_against_stepwise(&empty, &plan, &format!("empty trial {trial}"));
    }

    // A plan that empties the result mid-segment: merge over disjoint value
    // sets, then further restructuring of the emptied representation.
    let side = |root_attr: u32, child_attr: u32, name: &str, v: u64| {
        let edges = vec![DepEdge::new(name, attrs(&[root_attr, child_attr]), 1)];
        let mut tree = FTree::new(edges);
        let root = tree.add_node(attrs(&[root_attr]), None).unwrap();
        let child = tree.add_node(attrs(&[child_attr]), Some(root)).unwrap();
        FRep::from_parts(
            tree,
            vec![Union::new(
                root,
                vec![Entry {
                    value: Value::new(v),
                    children: vec![Union::new(child, vec![Entry::leaf(Value::new(v * 10))])],
                }],
            )],
        )
        .unwrap()
    };
    let product = fdb::frep::ops::product(side(0, 1, "R", 1), side(2, 3, "S", 2)).unwrap();
    let ra = product.tree().node_of_attr(AttrId(0)).unwrap();
    let sa = product.tree().node_of_attr(AttrId(2)).unwrap();
    let rb = product.tree().node_of_attr(AttrId(1)).unwrap();
    check_fused_against_stepwise(
        &product,
        &FPlan::new(vec![
            FPlanOp::Merge(ra, sa),
            FPlanOp::Swap(rb),
            FPlanOp::Normalise,
        ]),
        "merge to empty then restructure",
    );
}

#[test]
fn barrier_only_plans_fuse_into_one_program() {
    // Plans made exclusively of former fusion barriers (selections and
    // projections, zero structural steps between them) now compile into a
    // single overlay program like any other plan — including back-to-back
    // barriers — and still match the step-wise path bit for bit.
    let g = grocery_database();
    let rep = FdbEngine::new()
        .evaluate_flat(&g.db, &g.q1())
        .expect("FDB evaluates")
        .result;
    let item = g.attr("Orders.item");
    let location = g.attr("Store.location");
    let keep: BTreeSet<AttrId> = rep
        .visible_attrs()
        .into_iter()
        .filter(|&a| a != location)
        .collect();
    let plan = FPlan::new(vec![
        FPlanOp::SelectConst {
            attr: item,
            op: ComparisonOp::Ge,
            value: Value::new(1),
        },
        FPlanOp::SelectConst {
            attr: item,
            op: ComparisonOp::Ne,
            value: Value::new(3),
        },
        FPlanOp::Project(keep),
        FPlanOp::SelectConst {
            attr: item,
            op: ComparisonOp::Le,
            value: Value::new(2),
        },
    ]);
    let simplified = plan.simplified(rep.tree());
    assert!(simplified.fuses(), "barrier-only plans fuse whole");
    assert_eq!(
        simplified.barrier_count(),
        simplified.len(),
        "every operator of a barrier-only plan is a former barrier"
    );
    check_fused_against_stepwise(&rep, &plan, "barrier-only plan");

    // The same plan consumed by the aggregate sink runs entirely on the
    // overlay: passes for the leading barriers, a folded filter for the
    // trailing selection, and no arena anywhere.
    let mut executed = rep.clone();
    plan.execute(&mut executed).unwrap();
    let (got, on_overlay) = plan
        .execute_aggregate(&rep, fdb::frep::AggregateKind::Count, &[])
        .expect("aggregate sink runs");
    assert!(on_overlay, "barrier-only plans aggregate on the overlay");
    assert_eq!(
        got,
        fdb::frep::AggregateResult::Scalar(fdb::frep::AggregateValue::Count(
            executed.tuple_count()
        ))
    );
}

#[test]
fn selection_emptying_a_mid_tree_union_matches_the_stepwise_path() {
    // A selection on an inner attribute that nothing satisfies: the emptied
    // unions must cascade through the folded liveness sweep exactly like
    // the step-wise retain-and-prune, both alone and mid-program.
    let g = grocery_database();
    let rep = FdbEngine::new()
        .evaluate_flat(&g.db, &g.q1())
        .expect("FDB evaluates")
        .result;
    let location = g.attr("Store.location");
    let oid = g.attr("Orders.oid");
    let oid_node = rep.tree().node_of_attr(oid).expect("oid labels a node");
    let unsatisfiable = FPlanOp::SelectConst {
        attr: location,
        op: ComparisonOp::Gt,
        value: Value::new(1_000_000),
    };
    check_fused_against_stepwise(
        &rep,
        &FPlan::new(vec![unsatisfiable.clone()]),
        "unsatisfiable selection alone",
    );
    check_fused_against_stepwise(
        &rep,
        &FPlan::new(vec![
            FPlanOp::Swap(oid_node),
            unsatisfiable.clone(),
            FPlanOp::Normalise,
        ]),
        "unsatisfiable selection mid-program",
    );
    let mut emptied = rep.clone();
    FPlan::new(vec![unsatisfiable])
        .execute(&mut emptied)
        .unwrap();
    assert!(emptied.represents_empty());
}

#[test]
fn selection_then_projection_and_projection_then_structural_match() {
    let g = grocery_database();
    let rep = FdbEngine::new()
        .evaluate_flat(&g.db, &g.q1())
        .expect("FDB evaluates")
        .result;
    let item = g.attr("Orders.item");
    let oid = g.attr("Orders.oid");
    let dispatcher = g.attr("Disp.dispatcher");
    let keep: BTreeSet<AttrId> = [oid, dispatcher].into_iter().collect();

    // Selection then projection, fused into one program.
    check_fused_against_stepwise(
        &rep,
        &FPlan::new(vec![
            FPlanOp::SelectConst {
                attr: item,
                op: ComparisonOp::Ge,
                value: Value::new(2),
            },
            FPlanOp::Project(keep.clone()),
        ]),
        "selection then projection",
    );

    // Projection then a structural run: the projected tree's shape feeds
    // the subsequent swaps inside the same program.
    let keep_most: BTreeSet<AttrId> = rep
        .visible_attrs()
        .into_iter()
        .filter(|&a| a != dispatcher)
        .collect();
    let mut projected = rep.clone();
    fdb::frep::ops::project(&mut projected, &keep_most).unwrap();
    let swap_node = projected
        .tree()
        .node_ids()
        .into_iter()
        .find(|&n| projected.tree().parent(n).is_some())
        .expect("a non-root node survives the projection");
    check_fused_against_stepwise(
        &rep,
        &FPlan::new(vec![
            FPlanOp::Project(keep_most),
            FPlanOp::Swap(swap_node),
            FPlanOp::Normalise,
        ]),
        "projection then structural run",
    );
}

// ---------------------------------------------------------------------
// Snapshot-path corruption: the release-mode validator on load
// ---------------------------------------------------------------------

/// Re-frames a snapshot byte stream with one section's payload transformed,
/// recomputing the section checksum — so the corruption reaches the
/// **structural validator** on load instead of being caught by the checksum
/// layer.
fn reframe_section(bytes: &[u8], target: u32, mutate: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    use fdb::frep::snapshot::{read_sections, write_header, write_section, KIND_FREP};
    let sections = read_sections(bytes, KIND_FREP).expect("valid snapshot re-frames");
    let mut out = Vec::new();
    write_header(&mut out, KIND_FREP, sections.len() as u32);
    let mut mutate = Some(mutate);
    for (tag, payload) in sections {
        let mut payload = payload.to_vec();
        if tag == target {
            (mutate.take().expect("one section per tag"))(&mut payload);
        }
        write_section(&mut out, tag, &payload);
    }
    assert!(mutate.is_none(), "target section {target:#010x} exists");
    out
}

fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

#[test]
fn corrupt_arenas_cannot_enter_through_the_snapshot_path() {
    use fdb::common::FdbError;
    use fdb::frep::{decode_frep, encode_frep};

    const TAG_UNIO: u32 = u32::from_le_bytes(*b"UNIO");
    const TAG_ENTR: u32 = u32::from_le_bytes(*b"ENTR");
    const TAG_KIDS: u32 = u32::from_le_bytes(*b"KIDS");
    const TAG_SRTS: u32 = u32::from_le_bytes(*b"SRTS");
    const MISSING_KID: u32 = u32::MAX;

    let g = grocery_database();
    let rep = FdbEngine::new()
        .evaluate_flat(&g.db, &g.q1())
        .expect("FDB evaluates")
        .result;
    let bytes = encode_frep(&rep);

    // Identity re-framing is the control: the helper itself preserves the
    // format bit-for-bit, so every rejection below is the mutation's doing.
    let reframed = reframe_section(&bytes, TAG_ENTR, |_| {});
    assert_eq!(reframed, bytes, "identity re-framing is byte-identical");
    assert!(decode_frep(&reframed).unwrap().store_identical(&rep));

    // Locate a union with at least two entries (payload: count | per union
    // node u32, entries_start u32, entries_len u32).
    let unio_payload = {
        use fdb::frep::snapshot::{read_sections, KIND_FREP};
        let sections = read_sections(&bytes, KIND_FREP).unwrap();
        sections
            .iter()
            .find(|(tag, _)| *tag == TAG_UNIO)
            .map(|(_, p)| p.to_vec())
            .expect("UNIO section present")
    };
    let union_count = le_u32(&unio_payload, 0) as usize;
    let wide = (0..union_count)
        .map(|i| {
            let base = 4 + i * 12;
            (
                le_u32(&unio_payload, base + 4),
                le_u32(&unio_payload, base + 8),
            )
        })
        .find(|&(_, len)| len >= 2)
        .expect("some union has two entries");

    let cases: Vec<(&str, Vec<u8>)> = vec![
        (
            "out-of-order entry values",
            // Swap the value fields (u64 at +0 of each 12-byte entry record)
            // of two adjacent entries of one union: strictly-increasing
            // order is violated with checksums intact.
            reframe_section(&bytes, TAG_ENTR, |payload| {
                let (start, _) = wide;
                let a = 4 + start as usize * 12;
                let b = a + 12;
                for i in 0..8 {
                    payload.swap(a + i, b + i);
                }
            }),
        ),
        (
            "topological order violation in a kid run",
            // Point a kid slot at union 0: a kid's union index must exceed
            // its parent's, so index 0 can never be a valid kid.
            reframe_section(&bytes, TAG_KIDS, |payload| {
                let pos = (4..payload.len())
                    .step_by(4)
                    .find(|&p| le_u32(payload, p) != MISSING_KID)
                    .expect("a present kid slot exists");
                payload[pos..pos + 4].copy_from_slice(&0u32.to_le_bytes());
            }),
        ),
        (
            "unreachable unions after dropping a root",
            reframe_section(&bytes, TAG_SRTS, |payload| {
                let count = le_u32(payload, 0);
                assert!(count >= 1, "the representation has a root");
                payload[0..4].copy_from_slice(&(count - 1).to_le_bytes());
                payload.truncate(payload.len() - 4);
            }),
        ),
        (
            "union labelled by a node the tree does not have",
            reframe_section(&bytes, TAG_UNIO, |payload| {
                payload[4..8].copy_from_slice(&9_999u32.to_le_bytes());
            }),
        ),
    ];

    for (context, corrupted) in cases {
        match decode_frep(&corrupted) {
            Err(FdbError::SnapshotCorrupt { .. }) => {}
            other => {
                panic!("{context}: the snapshot validator must reject the arena, got {other:?}")
            }
        }
    }
}

#[test]
fn randomized_representations_round_trip_through_snapshots() {
    use fdb::frep::{decode_frep, encode_frep};
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x005A_AB5E ^ seed);
        let relations = 1 + (seed as usize % 3);
        let attributes = relations + 2 + (seed as usize % 3);
        let catalog = random_schema(&mut rng, relations, attributes);
        let rels: Vec<RelId> = catalog.rels().collect();
        let db = populate(&mut rng, &catalog, 25, 6, ValueDistribution::Uniform);
        let query = random_query(&mut rng, &catalog, &rels, (seed as usize) % 3);
        let rep = FdbEngine::new()
            .evaluate_flat(&db, &query)
            .expect("FDB evaluates")
            .result;
        let bytes = encode_frep(&rep);
        let loaded = decode_frep(&bytes).expect("round trip verifies");
        loaded
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed}: loaded rep invalid: {e:?}"));
        assert!(
            loaded.store_identical(&rep),
            "seed {seed}: snapshot round trip must be store-identical"
        );
        assert_eq!(
            encode_frep(&loaded),
            bytes,
            "seed {seed}: re-encoding is byte-identical"
        );
    }
}
