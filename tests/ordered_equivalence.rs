//! Ordered-evaluation and analytics-head equivalence.
//!
//! The 2013 follow-up paper's heads must be **bit-for-bit** equal to flat
//! oracles that share nothing with the factorised evaluators:
//!
//! 1. `ORDER BY` — `evaluate_factorised_ordered` (restructure-to-root when
//!    the costed planner accepts it, flat sort otherwise) against
//!    materialise-then-sort over the engine's own unordered result, on
//!    randomized databases and queries, and served through `FdbServer`
//!    pools of 1/2/4/8 workers;
//! 2. `DISTINCT` aggregates — the factorised value-set fold against a
//!    hash-set built from the enumerated tuples;
//! 3. multi-attribute (path) `GROUP BY` — the grouped factorised fold,
//!    including groupings the optimiser must lift to the root with swaps or
//!    hand to the hash-group fallback, against plain-iterator grouping over
//!    the enumerated tuples.
//!
//! Both ordering strategies produce the same canonical total order, so the
//! suite also asserts the *strategy split is real*: across the random sweep
//! both `Chain` and `FlatSort` decisions must occur.

use fdb::common::{AggregateFunc, AggregateHead, ComparisonOp, ConstSelection, RelId};
use fdb::datagen::{populate, random_query, random_schema, ValueDistribution};
use fdb::engine::{
    FactorisedQuery, FdbEngine, FdbServer, ServeOutcome, ServeRequest, SharedDatabase,
};
use fdb::frep::aggregate::{self, AggregateKind, AggregateResult, AggregateValue, AvgValue};
use fdb::frep::{materialize, materialize_then_sort, FRep, OrderStrategy};
use fdb::{AttrId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A random factorised result to evaluate heads against (same construction
/// as `concurrent_equivalence.rs`).
fn random_rep(rng: &mut StdRng, seed: u64) -> FRep {
    let relations = 1 + (seed as usize % 3);
    let attributes = relations + 2 + (seed as usize % 3);
    let catalog = random_schema(rng, relations, attributes);
    let rels: Vec<RelId> = catalog.rels().collect();
    let distribution = if seed.is_multiple_of(2) {
        ValueDistribution::Uniform
    } else {
        ValueDistribution::Zipf(1.0)
    };
    let db = populate(rng, &catalog, 25, 6, distribution);
    let k = (seed as usize) % attributes.min(3);
    let query = random_query(rng, &catalog, &rels, k);
    FdbEngine::new()
        .evaluate_flat(&db, &query)
        .expect("FDB evaluates")
        .result
}

/// A random query body over the representation's visible attributes:
/// selections (occasionally unsatisfiable) and sometimes an equality.  No
/// projection — the heads under test pick their own attributes.
fn random_body(rng: &mut StdRng, rep: &FRep) -> FactorisedQuery {
    let attrs = rep.visible_attrs();
    let mut query = FactorisedQuery::default();
    if attrs.is_empty() {
        return query;
    }
    let pick = |rng: &mut StdRng| attrs[rng.gen_range(0..attrs.len())];
    for _ in 0..rng.gen_range(0..2usize) {
        let op = [ComparisonOp::Ge, ComparisonOp::Le, ComparisonOp::Ne][rng.gen_range(0..3usize)];
        let value = if rng.gen_bool(0.1) {
            99
        } else {
            rng.gen_range(1..=6u64)
        };
        query = query.with_const_selection(ConstSelection {
            attr: pick(rng),
            op,
            value: Value::new(value),
        });
    }
    if attrs.len() >= 2 && rng.gen_bool(0.3) {
        let (a, b) = (pick(rng), pick(rng));
        if a != b {
            query.equalities.push((a, b));
        }
    }
    query
}

/// A random non-empty ordering head: a permuted prefix of the visible
/// attributes.
fn random_order_by(rng: &mut StdRng, rep: &FRep) -> Vec<AttrId> {
    let mut attrs = rep.visible_attrs();
    for i in (1..attrs.len()).rev() {
        attrs.swap(i, rng.gen_range(0..=i));
    }
    let len = rng.gen_range(1..=attrs.len().min(3));
    attrs.truncate(len);
    attrs
}

// ---------------------------------------------------------------------
// 1. ORDER BY vs materialise-then-sort, serial and served
// ---------------------------------------------------------------------

#[test]
fn randomized_ordered_evaluation_matches_the_sort_oracle() {
    let mut strategies = BTreeSet::new();
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x0DE2_2013 ^ seed);
        let rep = random_rep(&mut rng, seed);
        if rep.visible_attrs().is_empty() {
            continue;
        }
        let engine = FdbEngine::new();
        let body = random_body(&mut rng, &rep);
        let order_by = random_order_by(&mut rng, &rep);

        let ordered = engine
            .evaluate_factorised_ordered(&rep, &body, &order_by)
            .unwrap_or_else(|e| panic!("seed {seed}: ordered evaluation failed: {e:?}"));
        strategies.insert(format!("{:?}", ordered.strategy));

        // The oracle sorts the *unordered* engine result, so it exercises
        // none of the chain planner, the swaps or the priority cursor.
        let unordered = engine.evaluate_factorised(&rep, &body).unwrap();
        let oracle = materialize_then_sort(&unordered.result, &order_by).unwrap();
        assert_eq!(
            ordered.rows, oracle,
            "seed {seed}: ORDER BY {order_by:?} diverged ({:?})",
            ordered.strategy
        );

        // Exactly one strategy counter fired, matching the decision.
        let (chain, flat) = (ordered.stats.chain_heads, ordered.stats.flat_head_fallbacks);
        match ordered.strategy {
            OrderStrategy::Chain => assert_eq!((chain, flat), (1, 0)),
            OrderStrategy::FlatSort => assert_eq!((chain, flat), (0, 1)),
        }
    }
    assert!(
        strategies.len() == 2,
        "the sweep must exercise both Chain and FlatSort, saw {strategies:?}"
    );
}

#[test]
fn ordered_serving_is_identical_across_pool_sizes() {
    let mut rng = StdRng::seed_from_u64(0x0DE2_2014);
    let engine = FdbEngine::new();
    let mut shared = SharedDatabase::new();
    let mut reps = Vec::new();
    for r in 0..3u64 {
        let rep = random_rep(&mut rng, 7 + r);
        let id = shared
            .insert(format!("rep{r}"), rep.clone())
            .expect("unique name");
        reps.push((id, rep));
    }
    let db = Arc::new(shared);

    let requests: Vec<ServeRequest> = (0..24)
        .map(|i| {
            let (id, rep) = &reps[i % reps.len()];
            let body = random_body(&mut rng, rep);
            let order_by = random_order_by(&mut rng, rep);
            ServeRequest::new(*id, body, None).with_order_by(order_by)
        })
        .collect();

    for workers in [1usize, 2, 4, 8] {
        let server = FdbServer::new(engine, Arc::clone(&db), workers);
        let outcomes = server.serve_batch(requests.clone());
        assert_eq!(outcomes.len(), requests.len());
        for (i, (request, outcome)) in requests.iter().zip(&outcomes).enumerate() {
            let rep = db.get(request.rep).expect("registered representation");
            let serial = engine
                .evaluate_factorised_ordered(&rep, &request.query, &request.order_by)
                .unwrap();
            match outcome.as_ref().unwrap() {
                ServeOutcome::Ordered(got) => {
                    assert_eq!(
                        got.rows, serial.rows,
                        "request {i} rows diverged at {workers} workers"
                    );
                    assert_eq!(
                        got.strategy, serial.strategy,
                        "request {i} strategy diverged at {workers} workers"
                    );
                }
                other => panic!("request {i}: expected Ordered, got {other:?}"),
            }
        }
        assert_eq!(server.queries_served(), requests.len() as u64);
    }
}

#[test]
fn a_request_cannot_order_an_aggregate() {
    let mut rng = StdRng::seed_from_u64(0x0DE2_2015);
    let rep = random_rep(&mut rng, 2);
    let attr = rep.visible_attrs()[0];
    let mut shared = SharedDatabase::new();
    let id = shared.insert("base", rep).expect("unique name");
    let server = FdbServer::new(FdbEngine::new(), Arc::new(shared), 2);
    let request = ServeRequest::new(id, FactorisedQuery::default(), Some(AggregateHead::count()))
        .with_order_by(vec![attr]);
    assert!(
        server.serve_one(&request).is_err(),
        "aggregate + ORDER BY must be a structured error"
    );
}

// ---------------------------------------------------------------------
// 2. DISTINCT aggregates vs a hash-set oracle
// ---------------------------------------------------------------------

/// Builds the set of distinct values of `attr` in the enumerated tuples —
/// plain iterators and a set, nothing factorised.
fn distinct_values(rep: &FRep, attr: AttrId) -> BTreeSet<u64> {
    let rel = materialize(rep).expect("oracle enumerates");
    let col = rel
        .attrs()
        .iter()
        .position(|&a| a == attr)
        .expect("attribute is visible");
    rel.rows().map(|row| row[col].raw()).collect()
}

#[test]
fn distinct_aggregates_match_the_hash_set_oracle() {
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x0D15_71C7 ^ seed);
        let rep = random_rep(&mut rng, seed);
        for attr in rep.visible_attrs() {
            let values = distinct_values(&rep, attr);
            let count = values.len() as u128;
            let sum: u128 = values.iter().map(|&v| u128::from(v)).sum();

            let got = aggregate::evaluate(&rep, AggregateKind::CountDistinct(attr), &[]).unwrap();
            assert_eq!(
                got,
                AggregateResult::Scalar(AggregateValue::Count(count)),
                "seed {seed}: COUNT(DISTINCT {attr})"
            );
            let got = aggregate::evaluate(&rep, AggregateKind::SumDistinct(attr), &[]).unwrap();
            assert_eq!(
                got,
                AggregateResult::Scalar(AggregateValue::Sum(sum)),
                "seed {seed}: SUM(DISTINCT {attr})"
            );
            let got = aggregate::evaluate(&rep, AggregateKind::AvgDistinct(attr), &[]).unwrap();
            let want = (count > 0).then_some(AvgValue { sum, count });
            assert_eq!(
                got,
                AggregateResult::Scalar(AggregateValue::Avg(want)),
                "seed {seed}: AVG(DISTINCT {attr})"
            );
        }
    }
}

#[test]
fn distinct_heads_run_end_to_end_through_the_engine() {
    let mut rng = StdRng::seed_from_u64(0x0D15_71C8);
    let engine = FdbEngine::new();
    for seed in 0..6u64 {
        let rep = random_rep(&mut rng, seed);
        if rep.visible_attrs().is_empty() {
            continue;
        }
        let attr = rep.visible_attrs()[0];
        let body = FactorisedQuery::default();
        let head = AggregateHead::over(AggregateFunc::Count, attr).with_distinct();
        let out = engine
            .evaluate_factorised_aggregate(&rep, &body, &head)
            .unwrap();
        let values = distinct_values(&rep, attr);
        assert_eq!(
            out.result,
            AggregateResult::Scalar(AggregateValue::Count(values.len() as u128)),
            "seed {seed}: engine COUNT(DISTINCT) head"
        );
    }
    // DISTINCT MIN/MAX is rejected (multiplicity-insensitive), as is
    // DISTINCT without an attribute.
    let rep = random_rep(&mut rng, 2);
    let attr = rep.visible_attrs()[0];
    for func in [AggregateFunc::Min, AggregateFunc::Max] {
        let head = AggregateHead::over(func, attr).with_distinct();
        assert!(
            engine
                .evaluate_factorised_aggregate(&rep, &FactorisedQuery::default(), &head)
                .is_err(),
            "{func:?} DISTINCT must be rejected"
        );
    }
    assert!(engine
        .evaluate_factorised_aggregate(
            &rep,
            &FactorisedQuery::default(),
            &AggregateHead::count().with_distinct(),
        )
        .is_err());
}

// ---------------------------------------------------------------------
// 3. Path / non-root GROUP BY vs plain-iterator grouping
// ---------------------------------------------------------------------

/// Plain-iterator `GROUP BY ... COUNT(*)` over the enumerated tuples.
fn hash_group_count(rep: &FRep, group_by: &[AttrId]) -> Vec<(Vec<Value>, AggregateValue)> {
    let rel = materialize(rep).expect("oracle enumerates");
    let cols: Vec<usize> = group_by
        .iter()
        .map(|g| rel.attrs().iter().position(|a| a == g).expect("visible"))
        .collect();
    let mut groups: BTreeMap<Vec<Value>, u128> = BTreeMap::new();
    for row in rel.rows() {
        let key: Vec<Value> = cols.iter().map(|&c| row[c]).collect();
        *groups.entry(key).or_insert(0) += 1;
    }
    groups
        .into_iter()
        .map(|(k, n)| (k, AggregateValue::Count(n)))
        .collect()
}

#[test]
fn multi_attribute_group_by_matches_plain_iterator_grouping() {
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0x62B7_2013 ^ seed);
        let rep = random_rep(&mut rng, seed);
        let attrs = rep.visible_attrs();
        if attrs.len() < 2 {
            continue;
        }
        let engine = FdbEngine::new();
        // Group on a random pair — wherever the optimiser's tree puts those
        // nodes, the engine must lift them (or fall back to hash grouping)
        // and still match the oracle.
        let g1 = attrs[rng.gen_range(0..attrs.len())];
        let g2 = attrs[rng.gen_range(0..attrs.len())];
        let group_by: Vec<AttrId> = if g1 == g2 { vec![g1] } else { vec![g1, g2] };

        let mut head = AggregateHead::count();
        for &g in &group_by {
            head = head.grouped_by(g);
        }
        let body = random_body(&mut rng, &rep);
        let out = engine
            .evaluate_factorised_aggregate(&rep, &body, &head)
            .unwrap_or_else(|e| panic!("seed {seed}: grouped head failed: {e:?}"));

        let evaluated = engine.evaluate_factorised(&rep, &body).unwrap();
        let oracle = hash_group_count(&evaluated.result, &group_by);
        assert_eq!(
            out.result,
            AggregateResult::Groups(oracle),
            "seed {seed}: GROUP BY {group_by:?}"
        );
    }
}

#[test]
fn non_root_grouping_exercises_both_chain_and_fallback_paths() {
    // Over the sweep, grouped heads must take both the lifted-chain path and
    // the hash-group fallback — otherwise the costed planner is degenerate.
    let mut saw = BTreeSet::new();
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0x62B7_2014 ^ seed);
        let rep = random_rep(&mut rng, seed);
        let attrs = rep.visible_attrs();
        if attrs.is_empty() {
            continue;
        }
        let g = attrs[rng.gen_range(0..attrs.len())];
        let out = FdbEngine::new()
            .evaluate_factorised_aggregate(
                &rep,
                &FactorisedQuery::default(),
                &AggregateHead::count().grouped_by(g),
            )
            .unwrap();
        if out.stats.chain_heads > 0 {
            saw.insert("chain");
        }
        if out.stats.flat_head_fallbacks > 0 {
            saw.insert("fallback");
        }
    }
    assert!(
        saw.contains("chain"),
        "no grouped head ever ran on a chain: {saw:?}"
    );
}
