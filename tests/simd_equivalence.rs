//! Scalar-vs-SIMD kernel equivalence: every runtime-dispatched scan kernel
//! in `fdb::frep::kernel` must be **bit-for-bit** identical to its portable
//! scalar oracle on every input — unaligned lengths, empty and singleton
//! slices, all-equal blocks, and values at the unsigned extremes (where the
//! AVX2 sign-bit bias trick would first go wrong).
//!
//! The suite is built and run twice by CI: once in the default configuration
//! (the dispatched entry points *are* the scalar kernels — the sweep then
//! pins the oracles against independent std reimplementations) and once with
//! `--features simd`, where on an AVX2 machine the same sweep pins the
//! vectorised paths against the scalar oracles.

use fdb::common::{ComparisonOp, Value};
use fdb::frep::kernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OPS: [ComparisonOp; 6] = [
    ComparisonOp::Eq,
    ComparisonOp::Ne,
    ComparisonOp::Lt,
    ComparisonOp::Le,
    ComparisonOp::Gt,
    ComparisonOp::Ge,
];

/// Strictly increasing values of the given length with random gaps,
/// optionally shifted to the top of the u64 range to cross the sign bit.
fn sorted_values(rng: &mut StdRng, len: usize, high: bool) -> Vec<Value> {
    let mut next: u64 = if high {
        u64::MAX - 4 * len as u64 - 7
    } else {
        0
    };
    (0..len)
        .map(|_| {
            next += rng.gen_range(1..4u64);
            Value::new(next)
        })
        .collect()
}

/// Probe targets that hit every interesting position of a sorted slice:
/// every element, every gap neighbour, both ends, and the extremes.
fn probe_targets(rng: &mut StdRng, values: &[Value]) -> Vec<Value> {
    let mut targets = vec![Value::MIN, Value::MAX];
    for &v in values {
        targets.push(v);
        targets.push(Value::new(v.raw().wrapping_sub(1)));
        targets.push(Value::new(v.raw().wrapping_add(1)));
    }
    for _ in 0..16 {
        targets.push(Value::new(rng.gen_range(0..u64::MAX)));
    }
    targets
}

/// Sweeps every length 0..=N so each kernel sees every tail shape around
/// the 4-lane width, both sides of the dispatch thresholds (keep-mask at
/// 16, the run window at 32, via 15..17 and 31..33 neighbours), and the
/// 16-wide lower-bound window edge.
fn sweep_lengths() -> impl Iterator<Item = usize> {
    (0..=9).chain([15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 200])
}

#[test]
fn lower_bound_and_find_value_match_scalar() {
    let mut rng = StdRng::seed_from_u64(0xF1);
    for len in sweep_lengths() {
        for high in [false, true] {
            let values = sorted_values(&mut rng, len, high);
            for target in probe_targets(&mut rng, &values) {
                let lb = kernel::lower_bound(&values, target);
                assert_eq!(
                    lb,
                    kernel::lower_bound_scalar(&values, target),
                    "lower_bound len {len} high {high} target {target}"
                );
                // The vectorised probe is not wired into the engine (it
                // measured slower — see the kernel docs) but must still be
                // bit-for-bit correct.
                assert_eq!(
                    lb,
                    kernel::lower_bound_vector(&values, target),
                    "lower_bound_vector len {len} high {high} target {target}"
                );
                // Independent oracle, not just the scalar twin.
                assert_eq!(lb, values.partition_point(|&v| v < target));
                assert_eq!(
                    kernel::find_value(&values, target),
                    kernel::find_value_scalar(&values, target),
                    "find_value len {len} high {high} target {target}"
                );
                assert_eq!(
                    kernel::find_value_vector(&values, target),
                    kernel::find_value_scalar(&values, target),
                    "find_value_vector len {len} high {high} target {target}"
                );
                assert_eq!(
                    kernel::find_value(&values, target),
                    values.binary_search(&target).ok()
                );
            }
        }
    }
}

#[test]
fn keep_masks_match_scalar_for_every_comparison() {
    let mut rng = StdRng::seed_from_u64(0xF2);
    for len in sweep_lengths() {
        for high in [false, true] {
            let values = sorted_values(&mut rng, len, high);
            for &rhs in probe_targets(&mut rng, &values).iter().take(40) {
                for op in OPS {
                    let mut got = vec![false; len];
                    let mut want = vec![true; len];
                    kernel::fill_keep_mask(&values, op, rhs, &mut got);
                    kernel::fill_keep_mask_scalar(&values, op, rhs, &mut want);
                    assert_eq!(got, want, "op {op:?} rhs {rhs} len {len} high {high}");
                    // Independent oracle: the per-entry predicate.
                    for (i, &v) in values.iter().enumerate() {
                        assert_eq!(got[i], op.eval(v, rhs));
                    }
                }
            }
        }
    }
}

#[test]
fn first_unsorted_matches_scalar_with_planted_violations() {
    let mut rng = StdRng::seed_from_u64(0xF3);
    for len in sweep_lengths() {
        for high in [false, true] {
            // Sorted input: no violation anywhere.
            let mut values = sorted_values(&mut rng, len, high);
            assert_eq!(
                kernel::first_unsorted(&values),
                kernel::first_unsorted_scalar(&values)
            );
            assert_eq!(kernel::first_unsorted(&values), None);
            if len < 2 {
                continue;
            }
            // Plant a duplicate, then an inversion, at a random position.
            let at = rng.gen_range(0..len - 1);
            let orig = values[at + 1];
            values[at + 1] = values[at];
            assert_eq!(kernel::first_unsorted(&values), Some(at));
            assert_eq!(kernel::first_unsorted_scalar(&values), Some(at));
            values[at + 1] = Value::new(values[at].raw().wrapping_sub(1));
            assert_eq!(kernel::first_unsorted(&values), Some(at));
            assert_eq!(kernel::first_unsorted_scalar(&values), Some(at));
            values[at + 1] = orig;
        }
    }
    // All-equal: the violation is at index 0.
    let flat = vec![Value::new(7); 100];
    assert_eq!(kernel::first_unsorted(&flat), Some(0));
    assert_eq!(kernel::first_unsorted_scalar(&flat), Some(0));
}

#[test]
fn run_end_matches_scalar_on_grouped_streams() {
    let mut rng = StdRng::seed_from_u64(0xF4);
    for _ in 0..200 {
        // A non-decreasing stream of runs with random lengths, as the
        // priority cursor emits (equal values contiguous).
        let mut values: Vec<Value> = Vec::new();
        let mut v = rng.gen_range(0..10u64);
        for _ in 0..rng.gen_range(1..8usize) {
            let run = rng.gen_range(1..30usize);
            values.extend(std::iter::repeat_n(Value::new(v), run));
            v += rng.gen_range(1..5u64);
        }
        let mut start = 0;
        while start < values.len() {
            let end = kernel::run_end(&values, start);
            assert_eq!(end, kernel::run_end_scalar(&values, start));
            // Independent oracle: linear scan from start.
            let want = (start..values.len())
                .find(|&i| values[i] != values[start])
                .unwrap_or(values.len());
            assert_eq!(end, want, "start {start} of {values:?}");
            start = end;
        }
        // Past-the-end and empty-slice edges.
        assert_eq!(kernel::run_end(&values, values.len()), values.len());
    }
    assert_eq!(kernel::run_end(&[], 0), 0);
    assert_eq!(kernel::run_end(&[Value::new(3)], 0), 1);
}

#[test]
fn dispatch_reports_the_compiled_configuration() {
    // Without the feature the dispatched paths must be scalar; with it,
    // activation depends on the CPU, so only the implication is pinned.
    if !cfg!(feature = "simd") {
        assert!(!kernel::simd_active());
    }
}
