//! Property-based tests of the f-plan operators: every restructuring
//! operator preserves the represented relation, and every selection operator
//! computes exactly the selection it claims.

use fdb::common::{ComparisonOp, Query, RelId, Value};
use fdb::datagen::{populate, random_query, random_schema, ValueDistribution};
use fdb::engine::FdbEngine;
use fdb::frep::{materialize, ops, FRep};
use fdb::relation::Database;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Builds a random factorised query result to act as the operator input.
fn random_frep(
    seed: u64,
    relations: usize,
    attributes: usize,
    tuples: usize,
    k: usize,
) -> (Database, Query, FRep) {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = random_schema(&mut rng, relations, attributes);
    let rels: Vec<RelId> = catalog.rels().collect();
    let db = populate(&mut rng, &catalog, tuples, 6, ValueDistribution::Uniform);
    let query = random_query(&mut rng, &catalog, &rels, k);
    let rep = FdbEngine::new()
        .evaluate_flat(&db, &query)
        .expect("builds")
        .result;
    (db, query, rep)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, .. ProptestConfig::default() })]

    /// Random sequences of swaps and push-ups never change the represented
    /// relation, never break the structural invariants, and normalisation
    /// never increases the size.
    #[test]
    fn restructuring_preserves_the_relation(
        seed in 0u64..5_000,
        relations in 1usize..4,
        extra in 0usize..4,
        tuples in 1usize..30,
        k in 0usize..3,
        steps in 1usize..8,
    ) {
        let attributes = relations + extra;
        let k = k.min(attributes.saturating_sub(1));
        let (_, _, mut rep) = random_frep(seed, relations, attributes, tuples, k);
        let reference = materialize(&rep).expect("enumerate").tuple_set();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5151);

        for _ in 0..steps {
            let nodes = rep.tree().node_ids();
            let non_roots: Vec<_> =
                nodes.iter().copied().filter(|&n| rep.tree().parent(n).is_some()).collect();
            if non_roots.is_empty() {
                break;
            }
            let node = *non_roots.choose(&mut rng).expect("non-empty");
            if rng.gen_bool(0.5) {
                ops::swap(&mut rep, node).expect("swap of a non-root always applies");
            } else if rep.tree().can_push_up(node) {
                ops::push_up(&mut rep, node).expect("push-up applies when allowed");
            }
            rep.validate().expect("operators preserve the invariants");
            prop_assert_eq!(materialize(&rep).expect("enumerate").tuple_set(), reference.clone());
        }

        let size_before = rep.size();
        ops::normalise(&mut rep).expect("normalisation succeeds");
        rep.validate().expect("normalisation preserves the invariants");
        prop_assert!(rep.tree().is_normalised());
        prop_assert!(rep.size() <= size_before, "normalisation never grows the representation");
        prop_assert_eq!(materialize(&rep).expect("enumerate").tuple_set(), reference);
    }

    /// Selection with a constant keeps exactly the tuples satisfying the
    /// comparison.
    #[test]
    fn select_const_matches_the_flat_filter(
        seed in 0u64..5_000,
        tuples in 1usize..30,
        constant in 1u64..7,
        op_choice in 0usize..6,
    ) {
        let (_, _, mut rep) = random_frep(seed, 2, 5, tuples, 1);
        let attrs = rep.visible_attrs();
        let attr = attrs[seed as usize % attrs.len()];
        let op = [
            ComparisonOp::Eq,
            ComparisonOp::Ne,
            ComparisonOp::Lt,
            ComparisonOp::Le,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
        ][op_choice];
        let before = materialize(&rep).expect("enumerate");
        let col = before.col_index(attr).expect("attr present");
        let expected: BTreeSet<Vec<Value>> = before
            .rows()
            .filter(|row| op.eval(row[col], Value::new(constant)))
            .map(|r| r.to_vec())
            .collect();

        ops::select_const(&mut rep, attr, op, Value::new(constant)).expect("selection succeeds");
        rep.validate().expect("selection preserves the invariants");
        prop_assert_eq!(materialize(&rep).expect("enumerate").tuple_set(), expected);
    }

    /// Projection keeps exactly the distinct projections of the tuples.
    #[test]
    fn project_matches_the_flat_projection(
        seed in 0u64..5_000,
        tuples in 1usize..30,
        keep_mask in 1u32..63,
    ) {
        let (_, _, mut rep) = random_frep(seed, 2, 5, tuples, 1);
        let attrs = rep.visible_attrs();
        let keep: BTreeSet<_> = attrs
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| keep_mask & (1 << (i % 6)) != 0)
            .map(|(_, a)| a)
            .collect();
        let before = materialize(&rep).expect("enumerate");
        let keep_vec: Vec<_> = keep.iter().copied().collect();
        let expected = before.project_distinct(&keep_vec).expect("projection").tuple_set();

        ops::project(&mut rep, &keep).expect("projection succeeds");
        rep.validate().expect("projection preserves the invariants");
        prop_assert_eq!(rep.visible_attrs(), keep_vec);
        prop_assert_eq!(materialize(&rep).expect("enumerate").tuple_set(), expected);
    }

    /// Merging the roots of two independent factorisations computes their
    /// equi-join on the root attributes.
    #[test]
    fn merge_of_independent_inputs_is_a_join(
        seed in 0u64..5_000,
        tuples in 1usize..25,
    ) {
        // Two binary relations of the same catalog, each factorised on its
        // own (so their attribute sets are disjoint but live in one id space).
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = random_schema(&mut rng, 2, 4);
        let rels: Vec<RelId> = catalog.rels().collect();
        let db = populate(&mut rng, &catalog, tuples, 6, ValueDistribution::Uniform);
        let engine = FdbEngine::new();
        let left = engine
            .evaluate_flat(&db, &Query::product(vec![rels[0]]))
            .expect("left relation factorises")
            .result;
        let right = engine
            .evaluate_flat(&db, &Query::product(vec![rels[1]]))
            .expect("right relation factorises")
            .result;
        prop_assume!(!left.represents_empty() && !right.represents_empty());
        let left_attrs = left.visible_attrs();
        let right_attrs = right.visible_attrs();
        let product = ops::product(left.clone(), right.clone()).expect("disjoint attributes");

        // Join on the root attributes of the two inputs.
        let a = left.tree().roots()[0];
        let b = right.tree().roots()[0];
        let a_attr = *left.tree().class(a).iter().next().expect("non-empty class");
        let b_attr = *right.tree().class(b).iter().next().expect("non-empty class");

        let mut joined = product;
        let a_node = joined.tree().node_of_attr(a_attr).expect("present");
        let b_node = joined.tree().node_of_attr(b_attr).expect("present");
        prop_assume!(joined.tree().are_siblings(a_node, b_node));
        ops::merge(&mut joined, a_node, b_node).expect("merge of sibling roots");
        joined.validate().expect("merge preserves the invariants");

        // Reference: nested-loop join of the two flat relations.
        let flat_left = materialize(&left).expect("enumerate");
        let flat_right = materialize(&right).expect("enumerate");
        let la = flat_left.col_index(a_attr).expect("attr");
        let rb = flat_right.col_index(b_attr).expect("attr");
        let mut expected: BTreeSet<Vec<Value>> = BTreeSet::new();
        for lrow in flat_left.rows() {
            for rrow in flat_right.rows() {
                if lrow[la] == rrow[rb] {
                    // Canonical order: ascending attribute id over all attrs.
                    let mut tuple: Vec<(u32, Value)> = Vec::new();
                    for (i, &attr) in left_attrs.iter().enumerate() {
                        tuple.push((attr.0, lrow[i]));
                    }
                    for (i, &attr) in right_attrs.iter().enumerate() {
                        tuple.push((attr.0, rrow[i]));
                    }
                    tuple.sort_by_key(|&(a, _)| a);
                    expected.insert(tuple.into_iter().map(|(_, v)| v).collect());
                }
            }
        }
        prop_assert_eq!(materialize(&joined).expect("enumerate").tuple_set(), expected);
    }
}
