//! Chaos suite: deterministic fault injection against the serving stack.
//!
//! Every test runs the server at 1, 2, 4 and 8 workers and injects faults
//! through [`FaultPlan`]s that travel *inside* individual requests, so the
//! injection is deterministic per request no matter how the pool schedules
//! the batch.  The invariants pinned here are the robustness contract:
//!
//! * a faulted request reports the matching structured error (`WorkerPanicked`,
//!   `DeadlineExceeded`, `BudgetExceeded`) in its own result slot — faults
//!   never smear onto neighbouring requests;
//! * surviving requests are store-identical (bit-for-bit arena layout) to
//!   sequential evaluation, in request order;
//! * the server keeps serving after every fault class — workers survive
//!   panics, the plan cache is never poisoned, counters stay consistent;
//! * admission control sheds with `Overloaded` while draining.
//!
//! Compiled only with `--features fault-injection` (the failpoint sites
//! vanish from production builds).
#![cfg(feature = "fault-injection")]

use fdb::common::{
    AggregateHead, ComparisonOp, ConstSelection, FaultAction, FaultPlan, FdbError, QueryLimits,
    RelId,
};
use fdb::datagen::{populate, random_query, random_schema, ValueDistribution};
use fdb::engine::{
    FactorisedQuery, FdbEngine, FdbServer, ServeOutcome, ServeRequest, SharedDatabase,
};
use fdb::frep::FRep;
use fdb::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Worker counts every chaos test sweeps over.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A small deterministic factorised result to serve queries against.
fn seeded_rep(seed: u64) -> FRep {
    let mut rng = StdRng::seed_from_u64(0x00FA_017E ^ seed);
    let relations = 2;
    let attributes = 5;
    let catalog = random_schema(&mut rng, relations, attributes);
    let rels: Vec<RelId> = catalog.rels().collect();
    let db = populate(&mut rng, &catalog, 25, 6, ValueDistribution::Uniform);
    let query = random_query(&mut rng, &catalog, &rels, 1);
    FdbEngine::new()
        .evaluate_flat(&db, &query)
        .expect("FDB evaluates the base query")
        .result
}

/// A server over one seeded representation, plus the request template the
/// tests perturb: two constant selections, so the plan fuses and the
/// overlay executor's `fuse.execute` failpoint is reachable.
fn setup(threads: usize) -> (FdbServer, fdb::engine::RepId, FactorisedQuery) {
    let rep = seeded_rep(7);
    let attr = rep.visible_attrs()[0];
    let mut shared = SharedDatabase::new();
    let id = shared.insert("base", rep).expect("unique name");
    let server = FdbServer::new(FdbEngine::new(), Arc::new(shared), threads);
    let query = FactorisedQuery::default()
        .with_const_selection(ConstSelection {
            attr,
            op: ComparisonOp::Ge,
            value: Value::new(2),
        })
        .with_const_selection(ConstSelection {
            attr,
            op: ComparisonOp::Le,
            value: Value::new(5),
        });
    (server, id, query)
}

/// Asserts a non-faulted outcome slot is store-identical to evaluating the
/// same request sequentially on a fresh engine.
fn assert_slot_matches_serial(
    server: &FdbServer,
    request: &ServeRequest,
    outcome: &Result<ServeOutcome, FdbError>,
    context: &str,
) {
    let rep = server
        .db()
        .get(request.rep)
        .expect("registered representation");
    match &request.aggregate {
        Some(head) => {
            let want = FdbEngine::new()
                .evaluate_factorised_aggregate(&rep, &request.query, head)
                .expect("serial aggregate");
            match outcome {
                Ok(ServeOutcome::Aggregate(got)) => {
                    assert_eq!(got.result, want.result, "{context}: aggregate diverged");
                }
                other => panic!("{context}: expected aggregate, got {other:?}"),
            }
        }
        None => {
            let want = FdbEngine::new()
                .evaluate_factorised(&rep, &request.query)
                .expect("serial evaluation");
            match outcome {
                Ok(ServeOutcome::Rep(got)) => {
                    assert!(
                        got.result.store_identical(&want.result),
                        "{context}: store diverged from sequential evaluation"
                    );
                }
                other => panic!("{context}: expected representation, got {other:?}"),
            }
        }
    }
}

#[test]
fn injected_panics_are_attributed_per_request_and_workers_survive() {
    for threads in THREAD_COUNTS {
        let (server, id, query) = setup(threads);
        let requests: Vec<ServeRequest> = (0..12)
            .map(|i| {
                let request = ServeRequest::new(id, query.clone(), None);
                if i % 3 == 0 {
                    request.with_limits(
                        QueryLimits::unlimited().with_faults(
                            FaultPlan::new()
                                .on("serve.request", FaultAction::Panic(format!("chaos #{i}"))),
                        ),
                    )
                } else {
                    request
                }
            })
            .collect();
        let outcomes = server.serve_batch(requests.clone());
        assert_eq!(outcomes.len(), requests.len(), "{threads} workers: order");
        for (i, (request, outcome)) in requests.iter().zip(&outcomes).enumerate() {
            if i % 3 == 0 {
                match outcome {
                    Err(FdbError::WorkerPanicked { detail }) => assert!(
                        detail.contains(&format!("chaos #{i}")),
                        "{threads} workers: request {i} panic detail {detail:?}"
                    ),
                    other => panic!("{threads} workers: request {i} expected panic, got {other:?}"),
                }
            } else {
                assert_slot_matches_serial(
                    &server,
                    request,
                    outcome,
                    &format!("{threads} workers, request {i}"),
                );
            }
        }
        let stats = server.stats();
        assert_eq!(stats.worker_panics, 4, "{threads} workers: panic counter");
        assert_eq!(stats.queries_served, 12, "{threads} workers: served");
        // The panic was contained at the request boundary, not the pool's.
        assert_eq!(server.pool().panicked_tasks(), 0, "{threads} workers");
        // The plan cache was never poisoned: it still answers and the
        // server still serves.
        assert!(!server.cache().is_empty(), "{threads} workers: cache alive");
        let follow_up = server
            .serve_one(&ServeRequest::new(id, query.clone(), None))
            .expect("server keeps serving after panics");
        assert_slot_matches_serial(
            &server,
            &ServeRequest::new(id, query.clone(), None),
            &Ok(follow_up),
            &format!("{threads} workers, follow-up"),
        );
    }
}

#[test]
fn injected_delays_trip_deadlines_only_on_the_faulted_requests() {
    for threads in THREAD_COUNTS {
        let (server, id, query) = setup(threads);
        let requests: Vec<ServeRequest> = (0..8)
            .map(|i| {
                let request = ServeRequest::new(id, query.clone(), None);
                if i % 2 == 0 {
                    request.with_limits(
                        QueryLimits::unlimited()
                            .with_deadline(Duration::from_millis(5))
                            .with_faults(FaultPlan::new().on(
                                "fuse.execute",
                                FaultAction::Delay(Duration::from_millis(50)),
                            )),
                    )
                } else {
                    request
                }
            })
            .collect();
        let outcomes = server.serve_batch(requests.clone());
        for (i, (request, outcome)) in requests.iter().zip(&outcomes).enumerate() {
            if i % 2 == 0 {
                assert_eq!(
                    outcome.as_ref().err(),
                    Some(&FdbError::DeadlineExceeded { limit_ms: 5 }),
                    "{threads} workers: request {i}"
                );
            } else {
                assert_slot_matches_serial(
                    &server,
                    request,
                    outcome,
                    &format!("{threads} workers, request {i}"),
                );
            }
        }
        assert_eq!(server.stats().worker_panics, 0, "{threads} workers");
    }
}

#[test]
fn budget_pressure_trips_budgets_without_smearing_onto_neighbours() {
    for threads in THREAD_COUNTS {
        let (server, id, query) = setup(threads);
        let requests: Vec<ServeRequest> = (0..8)
            .map(|i| {
                let request = ServeRequest::new(id, query.clone(), None);
                if i % 2 == 1 {
                    request.with_limits(QueryLimits::unlimited().with_budget(500).with_faults(
                        FaultPlan::new().on("fuse.execute", FaultAction::BudgetPressure(1_000_000)),
                    ))
                } else {
                    // A generous budget that the tiny store never exhausts:
                    // governance armed, but the request must complete.
                    request.with_limits(QueryLimits::unlimited().with_budget(1_000_000_000))
                }
            })
            .collect();
        let outcomes = server.serve_batch(requests.clone());
        for (i, (request, outcome)) in requests.iter().zip(&outcomes).enumerate() {
            if i % 2 == 1 {
                assert_eq!(
                    outcome.as_ref().err(),
                    Some(&FdbError::BudgetExceeded { limit: 500 }),
                    "{threads} workers: request {i}"
                );
            } else {
                assert_slot_matches_serial(
                    &server,
                    request,
                    outcome,
                    &format!("{threads} workers, request {i}"),
                );
            }
        }
    }
}

#[test]
fn a_pre_set_cancellation_flag_aborts_cooperatively() {
    for threads in THREAD_COUNTS {
        let (server, id, query) = setup(threads);
        let cancel = Arc::new(AtomicBool::new(false));
        cancel.store(true, Ordering::SeqCst);
        let cancelled = ServeRequest::new(id, query.clone(), None)
            .with_limits(QueryLimits::unlimited().with_cancel(Arc::clone(&cancel)));
        let healthy = ServeRequest::new(id, query.clone(), None);
        let outcomes = server.serve_batch(vec![cancelled, healthy.clone()]);
        // Cancellation reports through the deadline variant with a zero
        // allowance (documented sentinel for "flagged off").
        assert_eq!(
            outcomes[0].as_ref().err(),
            Some(&FdbError::DeadlineExceeded { limit_ms: 0 }),
            "{threads} workers"
        );
        assert_slot_matches_serial(
            &server,
            &healthy,
            &outcomes[1],
            &format!("{threads} workers"),
        );
    }
}

#[test]
fn panics_at_deep_sites_leave_the_plan_cache_usable() {
    for threads in THREAD_COUNTS {
        let (server, id, query) = setup(threads);
        // Aggregate over the unfiltered representation folds through the
        // arena fold, whose `aggregate.fold` failpoint panics mid-request.
        let deep_faults = vec![
            (ServeRequest::new(id, query.clone(), None), "fuse.execute"),
            (
                ServeRequest::new(id, FactorisedQuery::default(), Some(AggregateHead::count())),
                "aggregate.fold",
            ),
        ];
        for (request, site) in deep_faults {
            let faulted = request.clone().with_limits(
                QueryLimits::unlimited()
                    .with_faults(FaultPlan::new().on(site, FaultAction::Panic("deep".into()))),
            );
            match server.serve_one(&faulted) {
                Err(FdbError::WorkerPanicked { detail }) => assert!(
                    detail.contains("deep"),
                    "{threads} workers, site {site}: {detail:?}"
                ),
                other => panic!("{threads} workers, site {site}: got {other:?}"),
            }
            // The cache mutex is not poisoned and the same query still
            // evaluates — now served from cache where applicable.
            let _ = server.cache().len();
            let outcome = server
                .serve_one(&request)
                .expect("server serves the same shape after a deep panic");
            assert_slot_matches_serial(
                &server,
                &request,
                &Ok(outcome),
                &format!("{threads} workers, site {site}"),
            );
        }
    }
}

#[test]
fn a_mixed_fault_storm_preserves_order_and_healthy_results() {
    for threads in THREAD_COUNTS {
        let (server, id, query) = setup(threads);
        let fault_for = |i: usize| -> Option<QueryLimits> {
            match i % 4 {
                0 => Some(QueryLimits::unlimited().with_faults(
                    FaultPlan::new().on("serve.request", FaultAction::Panic(format!("storm {i}"))),
                )),
                1 => Some(
                    QueryLimits::unlimited()
                        .with_deadline(Duration::from_millis(3))
                        .with_faults(FaultPlan::new().on(
                            "fuse.execute",
                            FaultAction::Delay(Duration::from_millis(40)),
                        )),
                ),
                2 => Some(QueryLimits::unlimited().with_budget(100).with_faults(
                    FaultPlan::new().on("fuse.execute", FaultAction::BudgetPressure(10_000)),
                )),
                _ => None,
            }
        };
        let requests: Vec<ServeRequest> = (0..16)
            .map(|i| {
                let request = ServeRequest::new(id, query.clone(), None);
                match fault_for(i) {
                    Some(limits) => request.with_limits(limits),
                    None => request,
                }
            })
            .collect();
        let outcomes = server.serve_batch(requests.clone());
        assert_eq!(outcomes.len(), 16, "{threads} workers: order");
        for (i, (request, outcome)) in requests.iter().zip(&outcomes).enumerate() {
            match i % 4 {
                0 => assert!(
                    matches!(outcome, Err(FdbError::WorkerPanicked { .. })),
                    "{threads} workers: request {i} got {outcome:?}"
                ),
                1 => assert_eq!(
                    outcome.as_ref().err(),
                    Some(&FdbError::DeadlineExceeded { limit_ms: 3 }),
                    "{threads} workers: request {i}"
                ),
                2 => assert_eq!(
                    outcome.as_ref().err(),
                    Some(&FdbError::BudgetExceeded { limit: 100 }),
                    "{threads} workers: request {i}"
                ),
                _ => assert_slot_matches_serial(
                    &server,
                    request,
                    outcome,
                    &format!("{threads} workers, request {i}"),
                ),
            }
        }
        let stats = server.stats();
        assert_eq!(stats.worker_panics, 4, "{threads} workers");
        assert_eq!(stats.queries_served, 16, "{threads} workers");
        // After the storm the server still serves a clean batch, fully
        // matching sequential evaluation.
        let clean: Vec<ServeRequest> = (0..4)
            .map(|_| ServeRequest::new(id, query.clone(), None))
            .collect();
        for (i, outcome) in server.serve_batch(clean.clone()).iter().enumerate() {
            assert_slot_matches_serial(
                &server,
                &clean[i],
                outcome,
                &format!("{threads} workers, post-storm {i}"),
            );
        }
    }
}

#[test]
fn a_draining_server_sheds_new_requests_as_overloaded() {
    for threads in THREAD_COUNTS {
        let (server, id, query) = setup(threads);
        let request = ServeRequest::new(id, query.clone(), None);
        server.serve_one(&request).expect("serves before the drain");
        server.shutdown();
        assert!(server.is_draining());
        match server.serve_one(&request) {
            Err(FdbError::Overloaded { capacity, .. }) => {
                assert!(capacity >= 1, "{threads} workers")
            }
            other => panic!("{threads} workers: expected Overloaded, got {other:?}"),
        }
        let outcomes = server.serve_batch(vec![request.clone(), request.clone()]);
        assert!(
            outcomes
                .iter()
                .all(|o| matches!(o, Err(FdbError::Overloaded { .. }))),
            "{threads} workers: batch shed while draining"
        );
        assert_eq!(server.stats().requests_shed, 3, "{threads} workers");
        assert_eq!(server.in_flight(), 0, "{threads} workers: drained");
    }
}
