//! Size-bound tests: factorised representations respect the `O(|D|^{s(T)})`
//! bound of the paper, and factorisation beats flat representation by the
//! expected margins on the paper's characteristic workloads.

use fdb::common::{Query, RelId};
use fdb::datagen::{populate, random_schema, ValueDistribution};
use fdb::engine::FdbEngine;
use fdb::ftree::s_cost;
use fdb::lp::{fractional_edge_cover, integral_edge_cover, CoverInstance};
use fdb::plan::optimal_ftree;
use fdb::relation::RdbEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A product of independent relations factorises to the *sum* of the input
/// sizes while its flat representation is their product (the introduction's
/// motivating example: exponential gap in the number of relations).
#[test]
fn product_queries_factorise_to_linear_size() {
    let mut rng = StdRng::seed_from_u64(99);
    for relations in 2..=4usize {
        let catalog = random_schema(&mut rng, relations, relations);
        let rels: Vec<RelId> = catalog.rels().collect();
        let db = populate(&mut rng, &catalog, 20, 1_000, ValueDistribution::Uniform);
        let query = Query::product(rels);
        let out = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
        // Factorised: Σ |R_i| singletons.  Flat: Π |R_i| tuples × arity.
        assert_eq!(out.stats.result_size, 20 * relations);
        assert_eq!(out.stats.result_tuples, 20u128.pow(relations as u32));
        assert!((out.stats.plan_cost - 1.0).abs() < 1e-6);
    }
}

/// The size of the factorised result is bounded by `|D|^{s(T)}` (up to the
/// number of attributes as a constant factor), and `s(T)` computed for the
/// chosen tree matches the optimiser's reported cost.
#[test]
fn factorised_sizes_respect_the_s_bound() {
    let mut rng = StdRng::seed_from_u64(123);
    for seed in 0..8u64 {
        let catalog = random_schema(&mut rng, 3, 6 + (seed as usize % 3));
        let rels: Vec<RelId> = catalog.rels().collect();
        let db = populate(&mut rng, &catalog, 60, 10, ValueDistribution::Uniform);
        let query = fdb::datagen::random_query(&mut rng, &catalog, &rels, 2);
        let search = optimal_ftree(&catalog, &query, |r| db.rel_len(r) as u64).unwrap();
        let out = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
        assert!((s_cost(out.result.tree()).unwrap() - out.stats.result_tree_cost).abs() < 1e-6);
        assert!((search.cost - out.stats.plan_cost).abs() < 1e-6);

        let d = db.total_data_elements() as f64;
        let attrs = catalog.attr_count() as f64;
        let bound = attrs * d.powf(search.cost);
        assert!(
            (out.stats.result_size as f64) <= bound + 1e-6,
            "seed {seed}: size {} exceeds A·|D|^s = {bound}",
            out.stats.result_size
        );
    }
}

/// The chain-join family of Example 6: a chain of n relations factorises in
/// polynomial size although the flat result grows much faster; the optimal
/// cost for a 4-chain is 2 while the flat result already needs 4 columns ×
/// up to |R|² tuples.
#[test]
fn chain_joins_show_the_exponential_gap() {
    let mut catalog = fdb::common::Catalog::new();
    let mut rels = Vec::new();
    for i in 0..4 {
        let (r, _) = catalog.add_relation(&format!("R{i}"), &["A", "B"]);
        rels.push(r);
    }
    // Bipartite-clique data: every relation pairs all of 1..=m with 1..=m,
    // the worst case for flat joins and the best case for factorisation.
    let m = 12u64;
    let mut db = fdb::relation::Database::new(catalog.clone());
    for &r in &rels {
        let rows: Vec<Vec<u64>> = (1..=m)
            .flat_map(|a| (1..=m).map(move |b| vec![a, b]))
            .collect();
        db.insert_raw_rows(r, &rows).unwrap();
    }
    let attr = |i: usize, name: &str| catalog.find_attr(&format!("R{i}.{name}")).unwrap();
    let query = Query::product(rels)
        .with_equality(attr(0, "B"), attr(1, "A"))
        .with_equality(attr(1, "B"), attr(2, "A"))
        .with_equality(attr(2, "B"), attr(3, "A"));

    let out = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
    let flat = RdbEngine::new().evaluate(&db, &query).unwrap();
    // Flat: m^5 tuples of 8 attributes.  Factorised: the optimiser guarantees
    // a cost-2 f-tree, i.e. O(|R|²) = O(m⁴) singletons — in practice far
    // fewer — while the flat representation needs 8·m⁵ data elements.
    assert_eq!(flat.len() as u128, (m as u128).pow(5));
    assert!((out.stats.plan_cost - 2.0).abs() < 1e-6);
    assert!(out.stats.result_size < 2 * (m as usize).pow(4));
    assert!(
        (flat.data_element_count() as f64) / (out.stats.result_size as f64) > 50.0,
        "factorisation must win by well over an order of magnitude on chain joins"
    );
}

/// The fractional edge cover solver agrees with the integral one on small
/// instances (and never exceeds it) — the foundation the cost model rests on.
#[test]
fn fractional_cover_is_consistent_with_integral_cover() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50 {
        use rand::Rng;
        let vertices = rng.gen_range(1..7usize);
        let edges = rng.gen_range(1..6usize);
        let mut instance = CoverInstance::new(vertices);
        for _ in 0..edges {
            let size = rng.gen_range(1..=vertices);
            let mut members: Vec<usize> = (0..vertices).collect();
            use rand::seq::SliceRandom;
            members.shuffle(&mut rng);
            instance.add_edge(members.into_iter().take(size).collect());
        }
        if !instance.is_coverable() {
            assert!(fractional_edge_cover(&instance).is_err());
            assert_eq!(integral_edge_cover(&instance), None);
            continue;
        }
        let frac = fractional_edge_cover(&instance).unwrap();
        let int = integral_edge_cover(&instance).unwrap() as f64;
        assert!(
            frac <= int + 1e-6,
            "fractional {frac} must not exceed integral {int}"
        );
        assert!(
            frac >= 1.0 - 1e-6,
            "non-empty instances need at least weight 1"
        );
    }
}
