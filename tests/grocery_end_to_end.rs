//! End-to-end reproduction of the paper's running example (Examples 1–10 use
//! the grocery retailer database of Figure 1).

use fdb::common::Value;
use fdb::datagen::grocery_database;
use fdb::engine::{FactorisedQuery, FdbEngine};
use fdb::frep::{materialize, ops};
use fdb::ftree::s_cost;
use fdb::plan::optimal_ftree;
use fdb::relation::RdbEngine;

/// Example 1: the factorised result of Q1 has the 18 tuples listed in the
/// paper and a much smaller factorised encoding.
#[test]
fn example1_q1_factorises() {
    let g = grocery_database();
    let engine = FdbEngine::new();
    let out = engine.evaluate_flat(&g.db, &g.q1()).unwrap();
    out.result.validate().unwrap();

    let flat = RdbEngine::new().evaluate(&g.db, &g.q1()).unwrap();
    assert_eq!(out.stats.result_tuples, flat.len() as u128);
    // The factorisation needs fewer singletons than the flat representation
    // has data elements.
    assert!(out.stats.result_size < flat.data_element_count());
    // Example 5: no f-tree of Q1 beats cost 2.
    assert!((out.stats.plan_cost - 2.0).abs() < 1e-6);
}

/// Example 1 / Example 4: Q2 groups by supplier with cost 1, and its
/// factorisation has exactly the shape of T3 (supplier on top, item and
/// location below).
#[test]
fn example1_q2_has_cost_one_tree() {
    let g = grocery_database();
    let out = FdbEngine::new().evaluate_flat(&g.db, &g.q2()).unwrap();
    assert!((out.stats.plan_cost - 1.0).abs() < 1e-6);
    let tree = out.result.tree();
    let supplier = tree.node_of_attr(g.attr("Produce.supplier")).unwrap();
    assert!(tree.parent(supplier).is_none());
    assert_eq!(tree.children(supplier).len(), 2);
    // Q2 has 6 result tuples (Guney×2, Dikici×3, Byzantium×1).
    assert_eq!(out.stats.result_tuples, 6);
    // The factorisation of Example 1 over T3 reads
    //   ⟨Guney⟩×(⟨Milk⟩∪⟨Cheese⟩)×⟨Antalya⟩ ∪ ⟨Dikici⟩×⟨Milk⟩×(⟨Ist⟩∪⟨Izm⟩∪⟨Ant⟩)
    //   ∪ ⟨Byzantium⟩×⟨Melon⟩×⟨Istanbul⟩
    // i.e. 12 singletons in the paper's compact notation where the supplier
    // class is written once.  Definition 2 spells the class out as
    // ⟨Produce.supplier:s⟩×⟨Serve.supplier:s⟩, adding one singleton per
    // supplier value, hence 15 here.
    assert_eq!(out.stats.result_size, 15);
}

/// Example 8: swapping item and location regroups the Q1 factorisation from
/// T1 to T2 without changing the represented relation.
#[test]
fn example8_swap_regroups_by_location() {
    let g = grocery_database();
    let out = FdbEngine::new().evaluate_flat(&g.db, &g.q1()).unwrap();
    let mut rep = out.result;
    let before = materialize(&rep).unwrap().tuple_set();
    let location = rep.tree().node_of_attr(g.attr("Store.location")).unwrap();
    // Swap location upwards until it becomes the root (the optimiser is free
    // to return any minimum-cost tree, so location may start several levels
    // down); every intermediate representation must stay equivalent.
    let mut guard = 0;
    while rep.tree().parent(location).is_some() {
        ops::swap(&mut rep, location).unwrap();
        rep.validate().unwrap();
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
        guard += 1;
        assert!(guard <= 10, "swapping to the root must terminate");
    }
    // The location class is now a root, i.e. the factorisation is grouped by
    // location first, as in the T2 factorisation of Example 1.
    assert!(rep.tree().parent(location).is_none());
}

/// Example 2 / Example 9: joining the factorised results of Q1 and Q2 on
/// item and location gives the same relation as the flat five-way join, and
/// the chosen f-plan restructures rather than unfolds.
#[test]
fn example2_join_of_factorised_results() {
    let g = grocery_database();
    let engine = FdbEngine::new();
    let r1 = engine.evaluate_flat(&g.db, &g.q1()).unwrap();
    let r2 = engine.evaluate_flat(&g.db, &g.q2()).unwrap();
    let product = ops::product(r1.result, r2.result).unwrap();
    let fq = FactorisedQuery::equalities(vec![
        (g.attr("Orders.item"), g.attr("Produce.item")),
        (g.attr("Store.location"), g.attr("Serve.location")),
    ]);
    let joined = engine.evaluate_factorised(&product, &fq).unwrap();
    joined.result.validate().unwrap();

    let full = g
        .q1()
        .with_equality(g.attr("Produce.supplier"), g.attr("Serve.supplier"))
        .with_equality(g.attr("Orders.item"), g.attr("Produce.item"))
        .with_equality(g.attr("Store.location"), g.attr("Serve.location"));
    let mut full = full;
    full.relations.push(g.produce);
    full.relations.push(g.serve);
    let flat = RdbEngine::new().evaluate(&g.db, &full).unwrap();
    let mut attrs = flat.attrs().to_vec();
    attrs.sort_unstable();
    assert_eq!(
        materialize(&joined.result).unwrap().tuple_set(),
        flat.reorder_columns(&attrs).unwrap().tuple_set()
    );
    // The result's f-tree satisfies the path constraint and is reasonably
    // factorised (cost ≤ 2, as for T6 in the paper).
    assert!(joined.stats.result_tree_cost <= 2.0 + 1e-6);
}

/// A selection with a constant on the factorised Q1 result: items other than
/// Cheese disappear and the item node becomes constant-bound (it no longer
/// contributes to the cost).
#[test]
fn constant_selection_on_factorised_q1() {
    let g = grocery_database();
    let engine = FdbEngine::new();
    let base = engine.evaluate_flat(&g.db, &g.q1()).unwrap();
    let mut rep = base.result;
    ops::select_const(
        &mut rep,
        g.attr("Orders.item"),
        fdb::common::ComparisonOp::Eq,
        Value::new(2), // Cheese
    )
    .unwrap();
    rep.validate().unwrap();
    let flat = materialize(&rep).unwrap();
    let col = flat.col_index(g.attr("Orders.item")).unwrap();
    assert!(flat.rows().all(|r| r[col] == Value::new(2)));
    assert!(s_cost(rep.tree()).unwrap() <= 2.0 + 1e-6);
}

/// The optimal f-tree search reports the costs of Example 5 directly from
/// the query structure (no data needed).
#[test]
fn example5_costs_from_the_optimiser() {
    let g = grocery_database();
    let q1 = optimal_ftree(g.catalog(), &g.q1(), |_| 1).unwrap();
    let q2 = optimal_ftree(g.catalog(), &g.q2(), |_| 1).unwrap();
    assert!((q1.cost - 2.0).abs() < 1e-6);
    assert!((q2.cost - 1.0).abs() < 1e-6);
}
