//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to a crate registry,
//! so the workspace vendors the *small* slice of the `rand` 0.8 API it
//! actually uses: [`rngs::StdRng`] (here a xoshiro256++ generator seeded via
//! SplitMix64), the [`Rng`]/[`SeedableRng`] traits with `gen_range` /
//! `gen_bool`, and [`seq::SliceRandom`] with `choose` / `shuffle`.
//!
//! The implementation is deterministic per seed (the experiment harness and
//! the property tests rely on that) but makes no attempt at being
//! reproducible with upstream `rand` — only API-compatible.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// Panics if the range is empty, like upstream `rand`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // Compare against p scaled to the full 64-bit range.
        (self.next_u64() as f64) < p * (u64::MAX as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, width)` with the widening-multiply method.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let width = (self.end - self.start) as u64;
                self.start + uniform_below(rng, width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, width + 1) as $t
            }
        }
    )+};
}

impl_sample_range!(u32, u64, usize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not reproducible with upstream `rand`'s `StdRng` (which is ChaCha12),
    /// but deterministic per seed, fast, and of ample statistical quality for
    /// workload generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=6u64);
            assert!((1..=6).contains(&w));
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..=6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn shuffle_and_choose_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
