//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_with_input`,
//! [`BenchmarkId`], `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a plain timing loop instead of
//! criterion's statistical machinery: each benchmark runs a short warm-up,
//! then `sample_size` timed iterations, and reports min / mean / max per
//! iteration on stdout.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id made of the parameter rendering alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// A group of benchmarks sharing a name prefix and a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.0);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.0);
        self
    }

    /// Finishes the group (printing happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Measures closures handed to it by a benchmark function.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` executions of `f` after a short warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples recorded");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{group}/{id}: min {min:?}  mean {mean:?}  max {max:?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// Bundles benchmark functions into a callable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("touch", 1), &5u64, |b, &input| {
            b.iter(|| {
                runs += 1;
                input * 2
            });
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("FDB", "N10_K2").0, "FDB/N10_K2");
        assert_eq!(BenchmarkId::from_parameter("R3_K4").0, "R3_K4");
    }
}
