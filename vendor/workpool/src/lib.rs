//! Offline stand-in for a work-stealing thread-pool crate (the build
//! container has no network access, so the workspace vendors the small API
//! surface it needs, like the `rand`/`criterion` shims).
//!
//! The pool is the classic work-stealing shape in miniature: one FIFO deque
//! per worker plus a round-robin submission counter.  [`ThreadPool::spawn`]
//! distributes tasks over the worker deques; an idle worker pops the front
//! of its own deque first, then steals from the **back** of its siblings'
//! deques, so a worker stuck on a long task cannot strand the tasks queued
//! behind it.  Workers park on a condvar when every deque is empty and are
//! woken by the next submission; dropping the pool drains all queued tasks
//! before joining the workers.
//!
//! The pool deliberately has no `join` primitive: callers that need to wait
//! for a batch collect completions over an `std::sync::mpsc` channel (which
//! also carries the results), keeping this shim small.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A queued unit of work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per worker; `spawn` pushes round-robin, owners pop the
    /// front, idle siblings steal the back.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Number of tasks currently sitting in some deque (incremented before
    /// the push, decremented at pop) — the park/retry predicate.
    queued: AtomicUsize,
    /// Number of tasks currently executing on some worker.  Incremented at
    /// pop *before* `queued` is decremented, so `queued + running` never
    /// transiently reads 0 while work is outstanding — the `wait_idle`
    /// predicate.
    running: AtomicUsize,
    /// Round-robin submission counter.
    next: AtomicUsize,
    /// Tasks whose closure panicked (the panic is caught so one bad query
    /// cannot take a serving worker down).
    panicked: AtomicUsize,
    /// Set by `Drop`; workers exit once no task is left to grab.
    shutdown: AtomicBool,
    /// Parking lot for idle workers.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// A fixed-size work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("workpool-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Creates a pool sized by [`default_threads`] (the `FDB_THREADS`
    /// environment variable, else the machine's available parallelism).
    pub fn with_default_threads() -> Self {
        ThreadPool::new(default_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// Queues a task for execution on some worker.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, task: F) {
        let shared = &self.shared;
        let slot = shared.next.fetch_add(1, Ordering::Relaxed) % shared.queues.len();
        shared.queued.fetch_add(1, Ordering::SeqCst);
        shared.queues[slot]
            .lock()
            .expect("pool queue lock")
            .push_back(Box::new(task));
        // Taking the idle lock orders this wake-up against a worker that
        // just saw `queued == 0`: it is either still before its own lock
        // acquisition (and will re-read the counter) or already waiting
        // (and receives the notification).
        let _guard = shared.idle_lock.lock().expect("pool idle lock");
        shared.idle_cv.notify_one();
    }

    /// Number of tasks whose closure panicked (caught, worker kept alive).
    pub fn panicked_tasks(&self) -> usize {
        self.shared.panicked.load(Ordering::SeqCst)
    }

    /// Number of tasks not yet finished: queued in some deque plus
    /// currently executing.  A snapshot — by the time the caller reads it,
    /// workers may have drained more.
    pub fn pending(&self) -> usize {
        self.shared.queued.load(Ordering::SeqCst) + self.shared.running.load(Ordering::SeqCst)
    }

    /// Blocks until every task spawned so far has finished (queues empty
    /// and no worker mid-task) — the graceful-drain primitive.  Tasks
    /// spawned concurrently with the wait extend it; the caller is expected
    /// to have stopped submitting first.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_lock.lock().expect("pool idle lock");
        while self.pending() > 0 {
            // Workers notify after finishing a task; the timeout is the
            // same lost-wakeup backstop the worker park loop uses.
            let (g, _) = self
                .shared
                .idle_cv
                .wait_timeout(guard, Duration::from_millis(10))
                .expect("pool idle wait");
            guard = g;
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.idle_lock.lock().expect("pool idle lock");
            self.shared.idle_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Default worker count: the `FDB_THREADS` environment variable when set to
/// a positive integer, else the machine's available parallelism, else 1.
///
/// `FDB_THREADS=0` clamps to 1 — the operator asked for the smallest
/// possible pool, so handing back the machine's full parallelism would
/// invert their intent.  A value that does not parse at all falls back to
/// the machine default.  Both cases log one structured warning to stderr
/// the first time, instead of silently ignoring the operator's intent.
pub fn default_threads() -> usize {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    if let Ok(raw) = std::env::var("FDB_THREADS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            Ok(_) => {
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: workpool: FDB_THREADS=\"0\" requests an empty pool; \
                         clamping to 1 worker"
                    );
                });
                return 1;
            }
            Err(_) => {
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: workpool: FDB_THREADS={raw:?} is not a positive integer; \
                         falling back to the machine's available parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        match find_task(shared, me) {
            Some(task) => {
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    shared.panicked.fetch_add(1, Ordering::SeqCst);
                }
                shared.running.fetch_sub(1, Ordering::SeqCst);
                // Wake `wait_idle` callers (and parked siblings, harmlessly).
                let _guard = shared.idle_lock.lock().expect("pool idle lock");
                shared.idle_cv.notify_all();
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let guard = shared.idle_lock.lock().expect("pool idle lock");
                if shared.queued.load(Ordering::SeqCst) == 0
                    && !shared.shutdown.load(Ordering::SeqCst)
                {
                    // The timeout is a belt-and-braces backstop; the lock
                    // handshake with `spawn` already prevents lost wake-ups.
                    let _ = shared
                        .idle_cv
                        .wait_timeout(guard, Duration::from_millis(50))
                        .expect("pool idle wait");
                }
            }
        }
    }
}

/// Own deque front first, then steal from the back of the siblings'.
fn find_task(shared: &Shared, me: usize) -> Option<Task> {
    let n = shared.queues.len();
    for offset in 0..n {
        let slot = (me + offset) % n;
        let mut queue = shared.queues[slot].lock().expect("pool queue lock");
        let task = if offset == 0 {
            queue.pop_front()
        } else {
            queue.pop_back()
        };
        if let Some(task) = task {
            // `running` up before `queued` down: `pending()` never dips to 0
            // while this task is in flight.
            shared.running.fetch_add(1, Ordering::SeqCst);
            shared.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn runs_every_spawned_task() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let (tx, rx) = mpsc::channel();
        for i in 0..100usize {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).expect("result channel"));
        }
        drop(tx);
        let mut seen: Vec<usize> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn idle_workers_steal_from_a_blocked_workers_deque() {
        // Round-robin puts every other task into the blocked worker's own
        // deque; all of them must still complete while it is stuck.
        let pool = ThreadPool::new(2);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        pool.spawn(move || {
            block_rx.recv().expect("release signal");
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..20usize {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).expect("result channel"));
        }
        drop(tx);
        let mut seen: Vec<usize> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>(), "stolen while blocked");
        block_tx.send(()).expect("unblock worker");
    }

    #[test]
    fn drop_drains_queued_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn a_panicking_task_is_counted_and_does_not_kill_the_worker() {
        let pool = ThreadPool::new(1);
        pool.spawn(|| panic!("one bad query"));
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || tx.send(7usize).expect("result channel"));
        assert_eq!(rx.recv().expect("later task still runs"), 7);
        assert_eq!(pool.panicked_tasks(), 1);
    }

    #[test]
    fn wait_idle_observes_every_spawned_task() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..40 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                std::thread::sleep(Duration::from_millis(1));
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 40);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn unparseable_fdb_threads_falls_back_instead_of_failing() {
        // Exercised in a child process so the env var cannot race the other
        // tests in this binary.
        let exe = std::env::current_exe().expect("test binary path");
        let out = std::process::Command::new(exe)
            .args([
                "--exact",
                "tests::default_threads_is_at_least_one",
                "--nocapture",
            ])
            .env("FDB_THREADS", "not-a-number")
            .output()
            .expect("child test run");
        assert!(out.status.success(), "fallback still yields a valid count");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("FDB_THREADS") && stderr.contains("not a positive integer"),
            "the misconfiguration is warned about once, not swallowed: {stderr}"
        );
    }

    /// Child-process body for `fdb_threads_zero_clamps_to_one_worker`: only
    /// asserts when the parent set `FDB_THREADS=0` (a bare run is a no-op
    /// pass, so the suite stays order- and environment-independent).
    #[test]
    fn default_threads_honours_a_zero_from_the_environment() {
        if std::env::var("FDB_THREADS").as_deref() == Ok("0") {
            assert_eq!(default_threads(), 1, "FDB_THREADS=0 clamps to one worker");
        }
    }

    #[test]
    fn fdb_threads_zero_clamps_to_one_worker() {
        // Exercised in a child process so the env var cannot race the other
        // tests in this binary.
        let exe = std::env::current_exe().expect("test binary path");
        let out = std::process::Command::new(exe)
            .args([
                "--exact",
                "tests::default_threads_honours_a_zero_from_the_environment",
                "--nocapture",
            ])
            .env("FDB_THREADS", "0")
            .output()
            .expect("child test run");
        assert!(out.status.success(), "zero clamps instead of failing");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("FDB_THREADS") && stderr.contains("clamping to 1"),
            "the clamp is warned about once, not silent: {stderr}"
        );
    }

    #[test]
    fn zero_requested_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || tx.send(1usize).expect("result channel"));
        assert_eq!(rx.recv().expect("task ran"), 1);
    }
}
