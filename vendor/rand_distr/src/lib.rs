//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides only what the workspace uses: the [`Distribution`] trait and a
//! [`Zipf`] distribution over `{1, …, n}` with exponent `s` (probability of
//! `k` proportional to `k^-s`).  Sampling is done by inversion against the
//! precomputed cumulative weights — `O(log n)` per draw after `O(n)` setup —
//! which is exact and plenty fast for the domains the paper's experiments
//! use (`n ≤ 100`).

#![warn(missing_docs)]

use rand::Rng;

/// Types that can draw samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned for invalid [`Zipf`] parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZipfError;

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid Zipf parameters (need n ≥ 1 and finite s ≥ 0)")
    }
}

impl std::error::Error for ZipfError {}

/// The Zipf distribution over `{1, …, n}`: `P(k) ∝ k^-s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative (unnormalised) weights; `cumulative[k-1] = Σ_{i≤k} i^-s`.
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `{1, …, n}` with exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Zipf, ZipfError> {
        if n == 0 || !s.is_finite() || s < 0.0 {
            return Err(ZipfError);
        }
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cumulative.push(total);
        }
        Ok(Zipf { cumulative })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let total = *self.cumulative.last().expect("n ≥ 1");
        // Uniform in (0, total]: inversion by binary search over the CDF.
        let u = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64 * total;
        let idx = self.cumulative.partition_point(|&c| c < u);
        (idx.min(self.cumulative.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
    }

    #[test]
    fn samples_stay_in_domain() {
        let dist = Zipf::new(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = dist.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v));
        }
    }

    #[test]
    fn skews_towards_small_values() {
        let dist = Zipf::new(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut ones = 0;
        let mut hundreds = 0;
        for _ in 0..20_000 {
            match dist.sample(&mut rng) as u64 {
                1 => ones += 1,
                100 => hundreds += 1,
                _ => {}
            }
        }
        assert!(ones > hundreds * 10, "ones={ones} hundreds={hundreds}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let dist = Zipf::new(4, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[dist.sample(&mut rng) as usize - 1] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }
}
