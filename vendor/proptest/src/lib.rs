//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with a `#![proptest_config(…)]` header and
//! `arg in range` strategies over integer ranges, plus [`prop_assert!`],
//! [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`].
//!
//! Each property runs `cases` times with arguments sampled from a
//! deterministic RNG derived from the property name and case index — no
//! shrinking, no persistence, but fully reproducible failures.

#![warn(missing_docs)]

/// Configuration accepted by `#![proptest_config(…)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;

    /// Deterministic RNG for one case of one property.
    pub fn rng_for_case(property: &str, case: u32) -> StdRng {
        use rand::SeedableRng;
        // FNV-1a over the property name, mixed with the case index.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in property.bytes() {
            hash = (hash ^ byte as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Samples one strategy (an integer range) for a property argument.
    pub fn sample<T, S: rand::SampleRange<T>>(rng: &mut StdRng, strategy: S) -> T {
        strategy.sample_from(rng)
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }` item
/// becomes a `#[test]` running `body` for every sampled case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config: $crate::ProptestConfig = $config;
                for __pt_case in 0..__pt_config.cases {
                    let mut __pt_rng = $crate::__rt::rng_for_case(stringify!($name), __pt_case);
                    $(let $arg = $crate::__rt::sample(&mut __pt_rng, $strategy);)+
                    let __pt_outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__pt_message) = __pt_outcome {
                        panic!(
                            "property {} failed on case {}: {}",
                            stringify!($name),
                            __pt_case,
                            __pt_message
                        );
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_left, __pt_right) = (&$left, &$right);
        if !(__pt_left == __pt_right) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __pt_left,
                __pt_right
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_left, __pt_right) = (&$left, &$right);
        if __pt_left == __pt_right {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __pt_left
            ));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Sampled arguments respect their ranges.
        #[test]
        fn arguments_stay_in_range(a in 0u64..100, b in 5usize..=9) {
            prop_assert!(a < 100);
            prop_assert!((5..=9).contains(&b));
            prop_assert_eq!(a, a);
            prop_assert_ne!(b + 1, b);
        }

        /// Assumptions skip cases without failing.
        #[test]
        fn assumptions_skip(a in 0u64..4) {
            prop_assume!(a != 2);
            prop_assert!(a != 2);
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed on case 0")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 1, ..ProptestConfig::default() })]

            fn always_fails(a in 0u64..4) {
                prop_assert!(a > 100, "a was {}", a);
            }
        }
        always_fails();
    }
}
